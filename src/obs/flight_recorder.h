/**
 * @file
 * Per-request flight recorder (DESIGN.md section 11).
 *
 * A fixed-size slab of RequestTrace records, keyed by the simulation's
 * unique request id (the (session, seq) pair is carried as metadata —
 * update and bypass requests number in independent sequence spaces,
 * so (session, seq) alone is ambiguous). Components stamp ticks at
 * the paper's pipeline boundaries as a request flows through them:
 *
 *   ClientSend    ClientLib::sendUpdate / bypass entry
 *   ClientTx      first fragment leaves the client NIC (TX stack done)
 *   SwitchIngress first arrival at the plain ToR/merge switch
 *   DeviceIngress first arrival at a PMNet device pipeline
 *   PersistStart  write admitted to the device's SRAM log queue
 *   PersistStage  PM write completed (log entry staged, pre-fence)
 *   PersistDone   covering fence retired, PMNet-ACK generated
 *   ServerRx      request arrives at the server NIC (pre-RX stack)
 *   ServerStart   a server worker picks the request up
 *   ServerEnd     handler + dispatch cost charged, replies leave
 *   AckRx         completing ACK/Response arrives at the client NIC
 *   Complete      ClientLib completion (same tick the driver records)
 *
 * Latency attribution (the Fig 15/16 decomposition): the checkpoints
 * are walked in the fixed order above, skipping absent stamps and any
 * stamp earlier than the running clock (parallel ack/server paths can
 * race); each surviving interval is charged to the bucket of its
 * *later* checkpoint:
 *
 *   client_stack   -> ClientTx, Complete
 *   wire           -> SwitchIngress, DeviceIngress, ServerRx, AckRx
 *   queueing       -> PersistStart, ServerStart
 *   device_persist -> PersistStage, PersistDone
 *   server         -> ServerEnd
 *
 * device_persist further splits into stage (interval ending at
 * PersistStage: the PM write itself) and fence-wait (interval ending
 * at PersistDone: group-commit epoch close + fence). Per-op fencing
 * stamps both at the same tick, so its fence-wait is zero.
 *
 * Because the walk partitions [ClientSend, Complete] into disjoint
 * intervals, the five buckets sum to the end-to-end latency *exactly*
 * (tick-accurate) by construction — the property the breakdown tests
 * assert. When a request completes through PMNet ACKs alone, the
 * server-side stamps (ServerRx/ServerStart/ServerEnd) describe a
 * parallel path that did not gate completion and are excluded.
 *
 * Traces freeze at Complete: late stamps (server processing finishing
 * after a PMNet-ACK completion, make-up acks) are dropped.
 *
 * Hot-path cost: begin/stamp/complete are allocation-free (slab +
 * open-addressing index, both sized at construction) and O(1); a
 * disabled recorder costs one predictable branch. Defining
 * PMNET_OBS_NO_TRACING compiles the three hooks down to empty
 * inlines for a zero-cost build.
 */

#ifndef PMNET_OBS_FLIGHT_RECORDER_H
#define PMNET_OBS_FLIGHT_RECORDER_H

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/time.h"
#include "obs/json.h"

namespace pmnet::obs {

/** Pipeline checkpoints, in canonical walk order. */
enum class Stamp : std::uint8_t {
    ClientSend = 0,
    ClientTx,
    SwitchIngress,
    DeviceIngress,
    PersistStart,
    PersistStage,
    PersistDone,
    ServerRx,
    ServerStart,
    ServerEnd,
    AckRx,
    Complete,
};

inline constexpr std::size_t kStampCount = 12;

/** True when stamp hooks are compiled in (see PMNET_OBS_NO_TRACING). */
#ifdef PMNET_OBS_NO_TRACING
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

/** The five-way latency decomposition of one request (Fig 15/16). */
struct Breakdown
{
    TickDelta clientStack = 0;
    TickDelta wire = 0;
    TickDelta queueing = 0;
    TickDelta devicePersist = 0;
    TickDelta server = 0;
    /** Sub-split of devicePersist (stage + fence == devicePersist). */
    TickDelta devicePersistStage = 0;
    TickDelta devicePersistFence = 0;

    TickDelta
    total() const
    {
        return clientStack + wire + queueing + devicePersist + server;
    }

    Breakdown &
    operator+=(const Breakdown &other)
    {
        clientStack += other.clientStack;
        wire += other.wire;
        queueing += other.queueing;
        devicePersist += other.devicePersist;
        server += other.server;
        devicePersistStage += other.devicePersistStage;
        devicePersistFence += other.devicePersistFence;
        return *this;
    }
};

/** One request's recorded checkpoints. */
struct RequestTrace
{
    static constexpr Tick kUnset = -1;

    std::uint64_t requestId = 0; ///< 0 = free slot
    std::uint16_t session = 0;
    /**
     * Owning shard in a multi-shard fabric (0 otherwise). The request
     * id itself is re-keyed with the shard (bits [32,40), see
     * ClientLib::newRequestId), so the open-addressing id index keeps
     * two shards' equal local seqs on distinct traces without
     * widening every stamp; the field here is attribution metadata.
     */
    std::uint16_t shard = 0;
    std::uint32_t firstSeq = 0;
    bool isUpdate = false;
    bool completed = false;
    /** Completion came from PMNet ACKs alone (no server ACK needed). */
    bool completedByPmnetAck = false;
    std::array<Tick, kStampCount> at{};

    bool
    has(Stamp stamp) const
    {
        return at[static_cast<std::size_t>(stamp)] != kUnset;
    }

    Tick
    tick(Stamp stamp) const
    {
        return at[static_cast<std::size_t>(stamp)];
    }

    /** Complete - ClientSend. @pre completed. */
    TickDelta endToEnd() const;

    /**
     * Exact interval partition of [ClientSend, Complete] into the
     * five buckets; zeros when the trace never completed.
     */
    Breakdown breakdown() const;
};

/** Fixed-capacity slab of in-flight and completed request traces. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(std::size_t capacity = 4096);

    /** Runtime kill switch; all hooks no-op when disabled. */
    void setEnabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /**
     * Serialize the stamp hooks with an internal mutex. Required when
     * the testbed runs on the partitioned engine: requests stamp from
     * whichever worker advances their partition. The accumulator
     * stays deterministic regardless of stamp interleaving — it folds
     * integer tick sums per completed trace, which commute — so the
     * lock only provides memory safety, not ordering. Off by default;
     * single-threaded runs never pay for it.
     */
    void setConcurrent(bool on) { concurrent_ = on; }

#ifdef PMNET_OBS_NO_TRACING
    void begin(std::uint64_t, std::uint16_t, std::uint32_t, bool, Tick,
               std::uint16_t = 0) {}
    void stampAt(std::uint64_t, Stamp, Tick) {}
    void complete(std::uint64_t, Tick, bool) {}
#else
    /**
     * Open a trace for @p request_id and record ClientSend at @p now.
     * Evicts the oldest trace when the slab is full (wrap-around).
     * request_id 0 is reserved/invalid and ignored. @p shard tags the
     * trace with the owning fabric shard (0 without sharding).
     */
    void begin(std::uint64_t request_id, std::uint16_t session,
               std::uint32_t first_seq, bool is_update, Tick now,
               std::uint16_t shard = 0);

    /**
     * Record @p stamp at @p now. Unknown ids, frozen (completed)
     * traces and a disabled recorder are silent no-ops. First-wins
     * for entry checkpoints, last-wins for the repeatable ones
     * (PersistDone, ServerRx, AckRx).
     */
    void stampAt(std::uint64_t request_id, Stamp stamp, Tick now);

    /**
     * Record Complete, freeze the trace, and — when accumulation is
     * on — fold its breakdown into the window accumulator.
     */
    void complete(std::uint64_t request_id, Tick now, bool by_pmnet_ack);
#endif

    /** @name Measurement-window aggregation
     *  @{
     */
    struct Accum
    {
        std::uint64_t count = 0;
        Breakdown sums;
        /** Sum of end-to-end latencies (== sums.total() invariant). */
        TickDelta totalLatency = 0;

        /** Mean per-segment breakdown (ns) of the window. */
        Json toJson() const;
    };

    void setAccumulating(bool on) { accumulating_ = on; }
    void resetAccum() { accum_ = Accum{}; }
    const Accum &accum() const { return accum_; }
    /** @} */

    /** @name Inspection (tests, tools)
     *  @{
     */
    std::size_t capacity() const { return slots_.size(); }
    std::uint64_t beginCount() const { return begins_; }
    std::uint64_t completeCount() const { return completes_; }
    std::uint64_t evictions() const { return evictions_; }

    const RequestTrace *find(std::uint64_t request_id) const;

    /** Visit every live trace in slab order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const RequestTrace &trace : slots_) {
            if (trace.requestId != 0)
                fn(trace);
        }
    }
    /** @} */

    /** Mean per-segment breakdown of the accumulated window. */
    Json accumJson() const;

  private:
    std::size_t probeFor(std::uint64_t request_id) const;
    void indexInsert(std::uint64_t request_id, std::int32_t slot);
    void indexErase(std::uint64_t request_id);
    RequestTrace *lookup(std::uint64_t request_id);

    /** Locks hooks iff concurrent_ (see setConcurrent). */
    struct MaybeLock
    {
        std::mutex *locked = nullptr;
        explicit MaybeLock(const FlightRecorder *rec)
        {
            if (rec->concurrent_) {
                locked = &rec->mutex_;
                locked->lock();
            }
        }
        ~MaybeLock()
        {
            if (locked)
                locked->unlock();
        }
    };

    bool enabled_ = true;
    bool accumulating_ = false;
    bool concurrent_ = false;
    mutable std::mutex mutex_;

    std::vector<RequestTrace> slots_;
    /** Open-addressing index: request id -> slot, -1 = empty. */
    std::vector<std::int32_t> table_;
    std::size_t tableMask_ = 0;
    std::size_t nextSlot_ = 0;

    std::uint64_t begins_ = 0;
    std::uint64_t completes_ = 0;
    std::uint64_t evictions_ = 0;

    Accum accum_;
};

} // namespace pmnet::obs

#endif // PMNET_OBS_FLIGHT_RECORDER_H
