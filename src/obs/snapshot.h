/**
 * @file
 * obs::Snapshot — the single serialization path for every
 * machine-readable artifact the repo emits (DESIGN.md section 11).
 *
 * A Snapshot is an ordered Json document plus the one blessed
 * renderer, toJson(). RunResults::toJson(), the pmnet_sim and
 * fault_matrix tools, and the bench binaries' --json writers all
 * build a Snapshot and emit through it; no tool hand-rolls JSON
 * strings anymore. The BenchRows style reproduces the historical
 * bench-array format byte-for-byte, so BENCH_*.json baselines and
 * tools/bench_diff are unaffected by the redesign.
 */

#ifndef PMNET_OBS_SNAPSHOT_H
#define PMNET_OBS_SNAPSHOT_H

#include <string>

#include "obs/json.h"

namespace pmnet::obs {

/** A named, ordered metrics document with one render path. */
class Snapshot
{
  public:
    Snapshot() : root_(Json::object()) {}
    explicit Snapshot(Json root) : root_(std::move(root)) {}

    Json &root() { return root_; }
    const Json &root() const { return root_; }

    /**
     * Set a value at a dotted path ("results.updates.count"),
     * creating intermediate objects. @pre root is an object.
     */
    void put(std::string_view dotted_path, Json value);

    /** Render the document. Pretty and BenchRows end with '\n'. */
    std::string toJson(JsonStyle style = JsonStyle::Pretty) const;

    /** Write toJson(@p style) to @p path. @return false on I/O error. */
    bool writeFile(const std::string &path,
                   JsonStyle style = JsonStyle::Pretty) const;

  private:
    Json root_;
};

} // namespace pmnet::obs

#endif // PMNET_OBS_SNAPSHOT_H
