/**
 * @file
 * Ordered JSON document model for the observability layer.
 *
 * Every machine-readable artifact of the repo — bench rows, the
 * pmnet_sim snapshot, the fault-matrix report — is assembled as an
 * obs::Json tree and rendered through one of three writers
 * (DESIGN.md section 11):
 *
 *  - Compact:   no whitespace, for log lines.
 *  - Pretty:    two-space indent, one key per line, for humans and
 *               the schema-validated tool outputs.
 *  - BenchRows: the historical bench format — a top-level array with
 *               one inline object per line — kept byte-identical so
 *               BENCH_*.json trajectories and tools/bench_diff keep
 *               working across the redesign.
 *
 * Objects preserve insertion order (vector of pairs, not a map): the
 * byte-identical guarantees depend on field order, and snapshots
 * group metrics by the component registration order.
 */

#ifndef PMNET_OBS_JSON_H
#define PMNET_OBS_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pmnet::obs {

/** How a Json tree is rendered to text. */
enum class JsonStyle {
    Compact,   ///< {"a":1,"b":[2,3]}
    Pretty,    ///< two-space indent, one key/element per line
    BenchRows, ///< top-level array, one inline object per line
};

/** An ordered JSON value (null/bool/number/string/array/object). */
class Json
{
  public:
    enum class Kind { Null, Bool, Uint, Int, Double, String, Array, Object };

    Json() = default;
    Json(bool value) : kind_(Kind::Bool), bool_(value) {}
    Json(double value) : kind_(Kind::Double), double_(value) {}
    Json(std::uint64_t value) : kind_(Kind::Uint), uint_(value) {}
    Json(std::int64_t value) : kind_(Kind::Int), int_(value) {}
    Json(int value) : kind_(Kind::Int), int_(value) {}
    Json(unsigned value) : kind_(Kind::Uint), uint_(value) {}
    Json(const char *value) : kind_(Kind::String), string_(value) {}
    Json(std::string value)
        : kind_(Kind::String), string_(std::move(value))
    {}
    Json(std::string_view value) : kind_(Kind::String), string_(value) {}

    static Json array() { Json j; j.kind_ = Kind::Array; return j; }
    static Json object() { Json j; j.kind_ = Kind::Object; return j; }

    Kind kind() const { return kind_; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /** Append to an array (kind must be Array or Null). */
    Json &push(Json value);

    /**
     * Set @p key in an object (kind must be Object or Null).
     * Overwrites an existing key in place, preserving its position.
     */
    Json &set(std::string_view key, Json value);

    /** Object member lookup; nullptr when absent or not an object. */
    Json *find(std::string_view key);
    const Json *find(std::string_view key) const;

    std::size_t size() const;

    std::vector<Json> &items() { return items_; }
    const std::vector<Json> &items() const { return items_; }
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return members_;
    }

    /** Render to text. Pretty/BenchRows end with a newline. */
    std::string dump(JsonStyle style = JsonStyle::Compact) const;

  private:
    void dumpInline(std::string &out, bool spaced) const;
    void dumpPretty(std::string &out, int depth) const;
    static void appendQuoted(std::string &out, const std::string &raw);
    static void appendDouble(std::string &out, double value);

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    std::int64_t int_ = 0;
    double double_ = 0;
    std::string string_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

} // namespace pmnet::obs

#endif // PMNET_OBS_JSON_H
