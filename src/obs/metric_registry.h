/**
 * @file
 * Hierarchical metric registry (DESIGN.md section 11).
 *
 * The registry is the one place every component's telemetry is named
 * and discoverable. It is deliberately split into a *hot* half and a
 * *cold* half:
 *
 *  - obs::Counter is a plain uint64 wrapper. Components keep Counter
 *    fields (or obtain Counter& handles from the registry) and bump
 *    them with ++ / += on the per-packet fast paths — exactly the
 *    machine code the old ad-hoc stat structs generated, with no
 *    indirection, locking or allocation.
 *  - Registration (naming a counter, attaching a probe) happens once
 *    at construction time; snapshotting walks the registrations and
 *    builds a nested obs::Json tree from the dotted paths. Both are
 *    cold paths and may allocate.
 *
 * Four registration flavours:
 *
 *  - counter(path): a registry-owned Counter (stable address in a
 *    deque); returns the handle to increment.
 *  - attach(path, counter): an externally-owned Counter — this is how
 *    the legacy DeviceStats/ClientStats/ServerStats/PacketPool::Stats
 *    adapter structs surface their fields without moving them.
 *  - probe(path, fn): a function sampled at snapshot time (queue
 *    depths, log occupancy, derived ratios). Never on the hot path.
 *  - series(path): a registry-owned LatencySeries.
 *
 * Not thread-safe by design: one registry belongs to one Testbed, and
 * the sweep harness gives every job its own Testbed on one thread.
 */

#ifndef PMNET_OBS_METRIC_REGISTRY_H
#define PMNET_OBS_METRIC_REGISTRY_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"
#include "obs/json.h"

namespace pmnet::obs {

/**
 * A plain uint64 event counter. Trivially copyable; supports the
 * same expressions the old raw-uint64 stat fields did (++, +=, =N,
 * implicit read), so converted structs compile everywhere unchanged.
 */
class Counter
{
  public:
    constexpr Counter() = default;
    constexpr Counter(std::uint64_t value) : value_(value) {}

    Counter &operator++() { ++value_; return *this; }
    std::uint64_t operator++(int) { return value_++; }
    Counter &operator+=(std::uint64_t by) { value_ += by; return *this; }
    Counter &operator=(std::uint64_t value) { value_ = value; return *this; }

    constexpr operator std::uint64_t() const { return value_; }

    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t get() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A settable signed value (occupancy, backlog, temperature...). */
class Gauge
{
  public:
    void set(std::int64_t value) { value_ = value; }
    Gauge &operator=(std::int64_t value) { value_ = value; return *this; }
    void add(std::int64_t delta) { value_ += delta; }
    std::int64_t get() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::int64_t value_ = 0;
};

/** Hierarchical registry of named counters/gauges/probes/series. */
class MetricRegistry
{
  public:
    /** Snapshot-time sampled metric (cold path only). */
    using ProbeFn = std::function<Json()>;

    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    /**
     * Register (or look up) a registry-owned counter at @p path.
     * The returned reference is stable for the registry's lifetime.
     */
    Counter &counter(std::string_view path);

    /** Register an externally-owned counter (component stat field). */
    void attach(std::string_view path, Counter &external);

    /** Register (or look up) a registry-owned gauge. */
    Gauge &gauge(std::string_view path);

    /** Register a snapshot-time probe. Re-registering replaces it. */
    void probe(std::string_view path, ProbeFn fn);

    /** Register (or look up) a registry-owned latency series. */
    LatencySeries &series(std::string_view path,
                          StatsMode mode = StatsMode::Exact);

    /** @name Lookup (tests, adapters, tools)
     *  @{
     */
    const Counter *findCounter(std::string_view path) const;
    const Gauge *findGauge(std::string_view path) const;
    LatencySeries *findSeries(std::string_view path);

    /** Counter/gauge value at @p path; 0 when absent. */
    std::uint64_t value(std::string_view path) const;

    bool contains(std::string_view path) const;
    std::size_t size() const { return entries_.size(); }
    /** @} */

    /**
     * Zero every counter and gauge (owned and attached) and clear
     * every series. Probes are read-only and unaffected. Used between
     * measurement windows.
     */
    void reset();

    /**
     * Render all registered metrics as a nested Json object: the
     * dotted path "device0.log.size" lands at
     * {"device0": {"log": {"size": ...}}}. Insertion order follows
     * registration order. Series render as
     * {count, mean, p50, p99, max} summaries.
     */
    Json toJson() const;

    /** Visit every path in registration order (for tests/tools). */
    void forEachPath(const std::function<void(const std::string &)> &fn)
        const;

  private:
    enum class Kind { OwnedCounter, ExternalCounter, Gauge, Probe, Series };

    struct Entry
    {
        std::string path;
        Kind kind;
        Counter *counter = nullptr; ///< owned or external
        Gauge *gauge = nullptr;
        ProbeFn probe;
        LatencySeries *series = nullptr;
    };

    Entry *findEntry(std::string_view path);
    const Entry *findEntry(std::string_view path) const;
    Entry &addEntry(std::string_view path, Kind kind);

    // Deques: stable addresses for returned references.
    std::deque<Counter> ownedCounters_;
    std::deque<Gauge> ownedGauges_;
    std::deque<LatencySeries> ownedSeries_;

    std::vector<Entry> entries_;
    std::map<std::string, std::size_t, std::less<>> index_;
};

/** Standard summary of a latency series for snapshots. */
Json latencySummaryJson(const LatencySeries &series);

} // namespace pmnet::obs

#endif // PMNET_OBS_METRIC_REGISTRY_H
