#include "obs/json.h"

#include <cstdio>

#include "common/logging.h"

namespace pmnet::obs {

Json &
Json::push(Json value)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        fatal("Json::push on a non-array value");
    items_.push_back(std::move(value));
    return *this;
}

Json &
Json::set(std::string_view key, Json value)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        fatal("Json::set on a non-object value");
    for (auto &member : members_) {
        if (member.first == key) {
            member.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(std::string(key), std::move(value));
    return *this;
}

Json *
Json::find(std::string_view key)
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (auto &member : members_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

const Json *
Json::find(std::string_view key) const
{
    return const_cast<Json *>(this)->find(key);
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return items_.size();
    if (kind_ == Kind::Object)
        return members_.size();
    return 0;
}

void
Json::appendQuoted(std::string &out, const std::string &raw)
{
    // The historical bench writer escaped only quotes and
    // backslashes; keeping the same rule preserves byte-identical
    // output. No emitter produces control characters.
    out += '"';
    for (char c : raw) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
}

void
Json::appendDouble(std::string &out, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    out += buf;
}

void
Json::dumpInline(std::string &out, bool spaced) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Uint:
        out += std::to_string(uint_);
        break;
      case Kind::Int:
        out += std::to_string(int_);
        break;
      case Kind::Double:
        appendDouble(out, double_);
        break;
      case Kind::String:
        appendQuoted(out, string_);
        break;
      case Kind::Array:
        out += '[';
        for (std::size_t i = 0; i < items_.size(); i++) {
            if (i)
                out += spaced ? ", " : ",";
            items_[i].dumpInline(out, spaced);
        }
        out += ']';
        break;
      case Kind::Object:
        out += '{';
        for (std::size_t i = 0; i < members_.size(); i++) {
            if (i)
                out += spaced ? ", " : ",";
            appendQuoted(out, members_[i].first);
            out += spaced ? ": " : ":";
            members_[i].second.dumpInline(out, spaced);
        }
        out += '}';
        break;
    }
}

void
Json::dumpPretty(std::string &out, int depth) const
{
    auto indent = [&](int d) { out.append(2 * static_cast<std::size_t>(d), ' '); };

    switch (kind_) {
      case Kind::Array:
        if (items_.empty()) {
            out += "[]";
            return;
        }
        out += "[\n";
        for (std::size_t i = 0; i < items_.size(); i++) {
            indent(depth + 1);
            items_[i].dumpPretty(out, depth + 1);
            if (i + 1 < items_.size())
                out += ',';
            out += '\n';
        }
        indent(depth);
        out += ']';
        return;
      case Kind::Object:
        if (members_.empty()) {
            out += "{}";
            return;
        }
        out += "{\n";
        for (std::size_t i = 0; i < members_.size(); i++) {
            indent(depth + 1);
            appendQuoted(out, members_[i].first);
            out += ": ";
            members_[i].second.dumpPretty(out, depth + 1);
            if (i + 1 < members_.size())
                out += ',';
            out += '\n';
        }
        indent(depth);
        out += '}';
        return;
      default:
        dumpInline(out, true);
        return;
    }
}

std::string
Json::dump(JsonStyle style) const
{
    std::string out;
    switch (style) {
      case JsonStyle::Compact:
        dumpInline(out, false);
        return out;
      case JsonStyle::Pretty:
        dumpPretty(out, 0);
        out += '\n';
        return out;
      case JsonStyle::BenchRows: {
        if (kind_ != Kind::Array)
            fatal("JsonStyle::BenchRows requires a top-level array");
        out += "[\n";
        for (std::size_t r = 0; r < items_.size(); r++) {
            out += "  ";
            items_[r].dumpInline(out, true);
            if (r + 1 < items_.size())
                out += ',';
            out += '\n';
        }
        out += "]\n";
        return out;
      }
    }
    return out;
}

} // namespace pmnet::obs
