/**
 * @file
 * Parallel sweep harness: runs independent testbed configurations
 * (workload x update-ratio x load-point grids) across CPU cores.
 *
 * Determinism contract: each job owns a private Simulator, Rng and
 * thread-local PacketPool, and the harness never perturbs a job's
 * seed, so a given configuration produces bit-identical stats whether
 * it runs serially, on one worker, or interleaved with any other jobs
 * on many workers. Results are collected positionally: result[i]
 * always corresponds to job[i] regardless of completion order.
 *
 * Thread count resolution: explicit argument > PMNET_SWEEP_THREADS
 * environment variable > std::thread::hardware_concurrency().
 */

#ifndef PMNET_TESTBED_SWEEP_H
#define PMNET_TESTBED_SWEEP_H

#include <functional>
#include <vector>

#include "testbed/system.h"

namespace pmnet::testbed {

/** One independent unit of sweep work producing a RunResults. */
using SweepJob = std::function<RunResults()>;

/** Resolve the worker count (0 = auto; always >= 1). */
unsigned sweepThreadCount(unsigned requested = 0);

/**
 * Execute @p jobs across @p threads workers; result order matches job
 * order. With one job or one worker this degenerates to a plain
 * serial loop on the calling thread (no threads spawned).
 */
std::vector<RunResults> runSweepJobs(std::vector<SweepJob> jobs,
                                     unsigned threads = 0);

/**
 * Convenience wrapper: assemble a Testbed per config and run
 * warmup + measurement, in parallel.
 */
std::vector<RunResults> runSweep(std::vector<TestbedConfig> configs,
                                 TickDelta warmup, TickDelta measure,
                                 unsigned threads = 0);

} // namespace pmnet::testbed

#endif // PMNET_TESTBED_SWEEP_H
