/**
 * @file
 * Closed-loop client driver.
 *
 * Each simulated client runs one driver: it draws a transaction from
 * its workload, issues the commands synchronously in order (updates
 * via ClientLib::sendUpdate, reads and LOCK/UNLOCK via bypass), and
 * immediately begins the next transaction — the synchronous
 * programming model of paper Section II-A. Latency is recorded per
 * request once the measurement window opens; LOCK conflicts retry
 * with a backoff and are counted separately.
 *
 * The client-side-logging alternative design (Fig 17a) is driven here
 * too: the update still flows to the server, but the client proceeds
 * after its local logger's (parametric) persist delay.
 */

#ifndef PMNET_TESTBED_DRIVER_H
#define PMNET_TESTBED_DRIVER_H

#include "common/stats.h"
#include "stack/client_lib.h"
#include "testbed/config.h"

namespace pmnet::testbed {

/** Measurement sinks shared by all drivers of one testbed. */
struct DriverSinks
{
    LatencySeries *updateLatency = nullptr;
    LatencySeries *readLatency = nullptr;
    LatencySeries *allLatency = nullptr;
    ThroughputMeter *meter = nullptr;
    const bool *measuring = nullptr;
};

/** One closed-loop client. */
class ClientDriver
{
  public:
    ClientDriver(sim::Simulator &simulator, stack::ClientLib &lib,
                 std::unique_ptr<apps::Workload> workload, Rng rng,
                 DriverSinks sinks, const TestbedConfig &config);

    /** Begin issuing transactions after @p initial_delay. */
    void start(TickDelta initial_delay);

    /** Stop issuing new work (in-flight requests drain naturally). */
    void stop() { running_ = false; }

    std::uint64_t completedRequests() const { return completed_; }
    std::uint64_t completedTransactions() const { return txns_; }
    std::uint64_t lockConflicts() const { return lockConflicts_; }

  private:
    void nextTransaction();
    void issueCurrent();
    void recordAndAdvance(Tick issued_at, bool is_update);

    sim::Simulator &sim_;
    stack::ClientLib &lib_;
    std::unique_ptr<apps::Workload> workload_;
    Rng rng_;
    DriverSinks sinks_;
    const TestbedConfig &config_;

    bool running_ = false;
    std::vector<apps::Command> txn_;
    std::size_t txnIndex_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t txns_ = 0;
    std::uint64_t lockConflicts_ = 0;
    TickDelta lockBackoff_ = microseconds(30);
};

} // namespace pmnet::testbed

#endif // PMNET_TESTBED_DRIVER_H
