/**
 * @file
 * Closed-loop (and optionally open-loop) client driver.
 *
 * Each simulated client runs one driver: it draws a transaction from
 * its workload, issues the commands synchronously in order (updates
 * via ClientLib::sendUpdate, reads and LOCK/UNLOCK via bypass), and
 * immediately begins the next transaction — the synchronous
 * programming model of paper Section II-A. Latency is recorded per
 * request once the measurement window opens; LOCK conflicts retry
 * with a backoff and are counted separately.
 *
 * The client-side-logging alternative design (Fig 17a) is driven here
 * too: the update still flows to the server, but the client proceeds
 * after its local logger's (parametric) persist delay.
 *
 * TestbedConfig::openLoopGap > 0 switches the driver to open loop:
 * one command fires every gap ticks regardless of completions, up to
 * openLoopMaxOutstanding in flight (full windows skip the tick) — the
 * shard-scaling incast regime, where load must not self-throttle to
 * the slowest shard. Open loop records latencies identically but does
 * not retry LOCK conflicts (it only counts them).
 *
 * In either loop the driver hashes each command's key once
 * (commandKeyHash) and hands the hash to ClientLib, which uses it for
 * consistent-hash shard routing; the key bytes are never rehashed
 * downstream.
 */

#ifndef PMNET_TESTBED_DRIVER_H
#define PMNET_TESTBED_DRIVER_H

#include "common/stats.h"
#include "stack/client_lib.h"
#include "testbed/config.h"

namespace pmnet::testbed {

/** Measurement sinks shared by all drivers of one testbed. */
struct DriverSinks
{
    LatencySeries *updateLatency = nullptr;
    LatencySeries *readLatency = nullptr;
    LatencySeries *allLatency = nullptr;
    ThroughputMeter *meter = nullptr;
    const bool *measuring = nullptr;
};

/** One closed-loop client. */
class ClientDriver
{
  public:
    ClientDriver(sim::Simulator &simulator, stack::ClientLib &lib,
                 std::unique_ptr<apps::Workload> workload, Rng rng,
                 DriverSinks sinks, const TestbedConfig &config);

    /** Begin issuing transactions after @p initial_delay. */
    void start(TickDelta initial_delay);

    /** Stop issuing new work (in-flight requests drain naturally). */
    void stop() { running_ = false; }

    std::uint64_t completedRequests() const { return completed_; }
    std::uint64_t completedTransactions() const { return txns_; }
    std::uint64_t lockConflicts() const { return lockConflicts_; }
    /** Open loop only: requests currently in flight. */
    std::size_t outstandingRequests() const { return outstanding_; }
    /** Open loop only: issue ticks skipped because the window was
     *  full (back-pressure signal for the scaling bench). */
    std::uint64_t openLoopSkipped() const { return openLoopSkipped_; }

    /**
     * The key hash ClientLib routes on: the command's key argument
     * (args[1]) hashed once with the store's canonical hashKey; 0 for
     * keyless commands. Exposed so the fault harness derives shard
     * ownership from the same bytes the client routed on.
     */
    static std::uint64_t commandKeyHash(const apps::Command &cmd);

  private:
    void nextTransaction();
    void issueCurrent();
    void recordAndAdvance(Tick issued_at, bool is_update);
    void record(Tick issued_at, bool is_update);
    void openLoopTick();
    void issueOpenLoop(const apps::Command &cmd);
    void openLoopComplete(Tick issued_at, bool is_update);

    sim::Simulator &sim_;
    stack::ClientLib &lib_;
    std::unique_ptr<apps::Workload> workload_;
    Rng rng_;
    DriverSinks sinks_;
    const TestbedConfig &config_;

    bool running_ = false;
    std::vector<apps::Command> txn_;
    std::size_t txnIndex_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t txns_ = 0;
    std::uint64_t lockConflicts_ = 0;
    TickDelta lockBackoff_ = microseconds(30);
    std::size_t outstanding_ = 0;
    std::uint64_t openLoopSkipped_ = 0;
};

} // namespace pmnet::testbed

#endif // PMNET_TESTBED_DRIVER_H
