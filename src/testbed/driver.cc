#include "testbed/driver.h"

#include "common/key.h"
#include "common/logging.h"

namespace pmnet::testbed {

using apps::Command;
using apps::CommandClass;

std::uint64_t
ClientDriver::commandKeyHash(const Command &cmd)
{
    return cmd.args.size() > 1 ? hashKey(cmd.args[1]) : 0;
}

ClientDriver::ClientDriver(sim::Simulator &simulator,
                           stack::ClientLib &lib,
                           std::unique_ptr<apps::Workload> workload,
                           Rng rng, DriverSinks sinks,
                           const TestbedConfig &config)
    : sim_(simulator), lib_(lib), workload_(std::move(workload)),
      rng_(rng), sinks_(sinks), config_(config)
{
}

void
ClientDriver::start(TickDelta initial_delay)
{
    running_ = true;
    lib_.startSession();
    if (config_.openLoopGap > 0)
        sim_.schedule(initial_delay, [this]() { openLoopTick(); });
    else
        sim_.schedule(initial_delay, [this]() { nextTransaction(); });
}

void
ClientDriver::nextTransaction()
{
    if (!running_)
        return;
    txn_ = workload_->nextTransaction(rng_);
    txnIndex_ = 0;
    if (txn_.empty()) {
        sim_.schedule(microseconds(1), [this]() { nextTransaction(); });
        return;
    }
    issueCurrent();
}

void
ClientDriver::record(Tick issued_at, bool is_update)
{
    completed_++;
    if (sinks_.measuring && *sinks_.measuring) {
        TickDelta latency = sim_.now() - issued_at;
        if (sinks_.allLatency)
            sinks_.allLatency->add(latency);
        if (is_update && sinks_.updateLatency)
            sinks_.updateLatency->add(latency);
        if (!is_update && sinks_.readLatency)
            sinks_.readLatency->add(latency);
        if (sinks_.meter)
            sinks_.meter->complete();
    }
}

void
ClientDriver::recordAndAdvance(Tick issued_at, bool is_update)
{
    record(issued_at, is_update);
    txnIndex_++;
    if (txnIndex_ >= txn_.size()) {
        txns_++;
        nextTransaction();
    } else {
        issueCurrent();
    }
}

void
ClientDriver::issueCurrent()
{
    if (!running_)
        return;
    const Command &cmd = txn_[txnIndex_];
    Bytes payload = apps::encodeCommand(cmd);
    CommandClass cls = apps::classifyCommand(cmd.verb());
    std::uint64_t key_hash = commandKeyHash(cmd);
    Tick issued_at = sim_.now();

    if (cls == CommandClass::Update && config_.nearDataOps &&
        apps::isNearDataVerb(cmd.verb())) {
        // NearPM-style near-data op: logged like an update, answered
        // in-flight by a caching device (or by the server).
        lib_.sendNearData(std::move(payload), key_hash,
                          [this, issued_at](const Bytes &) {
                              recordAndAdvance(issued_at, true);
                          });
        return;
    }

    if (cls == CommandClass::Update) {
        if (config_.mode == SystemMode::ClientSideLogging) {
            // Fig 17a: the update is persisted by the local logger;
            // the client proceeds then, while the request continues
            // to the server in the background.
            lib_.sendUpdate(std::move(payload), key_hash, []() {});
            TickDelta local = config_.replicationDegree > 1
                                  ? config_.clientLogReplicationDelay
                                  : config_.clientLocalLogDelay;
            sim_.schedule(local, [this, issued_at]() {
                recordAndAdvance(issued_at, true);
            });
            return;
        }
        lib_.sendUpdate(std::move(payload), key_hash,
                        [this, issued_at]() {
                            recordAndAdvance(issued_at, true);
                        });
        return;
    }

    // Reads and synchronization primitives wait for the server's (or
    // cache's) response.
    bool is_lock = cmd.verb() == "LOCK";
    lib_.bypass(std::move(payload), key_hash,
                [this, issued_at, is_lock](const Bytes &resp) {
                    if (is_lock) {
                        auto decoded = apps::decodeResponse(resp);
                        if (decoded && decoded->status ==
                                           apps::RespStatus::Locked) {
                            // Contended critical section: back off and
                            // retry the acquisition (Fig 5).
                            lockConflicts_++;
                            sim_.schedule(lockBackoff_, [this]() {
                                issueCurrent();
                            });
                            return;
                        }
                    }
                    recordAndAdvance(issued_at, false);
                });
}

void
ClientDriver::openLoopTick()
{
    if (!running_)
        return;
    // The clock, not completions, paces issue: schedule the next tick
    // before doing anything else.
    sim_.schedule(config_.openLoopGap, [this]() { openLoopTick(); });

    if (outstanding_ >= config_.openLoopMaxOutstanding) {
        openLoopSkipped_++;
        return;
    }

    // Pull the next command off the workload's transaction stream.
    while (txnIndex_ >= txn_.size()) {
        if (!txn_.empty()) {
            txns_++;
            txn_.clear();
        }
        txn_ = workload_->nextTransaction(rng_);
        txnIndex_ = 0;
        if (txn_.empty())
            return; // nothing to issue this tick
    }
    issueOpenLoop(txn_[txnIndex_++]);
}

void
ClientDriver::issueOpenLoop(const Command &cmd)
{
    Bytes payload = apps::encodeCommand(cmd);
    CommandClass cls = apps::classifyCommand(cmd.verb());
    std::uint64_t key_hash = commandKeyHash(cmd);
    Tick issued_at = sim_.now();
    outstanding_++;

    if (cls == CommandClass::Update && config_.nearDataOps &&
        apps::isNearDataVerb(cmd.verb())) {
        lib_.sendNearData(std::move(payload), key_hash,
                          [this, issued_at](const Bytes &) {
                              openLoopComplete(issued_at, true);
                          });
        return;
    }

    if (cls == CommandClass::Update) {
        lib_.sendUpdate(std::move(payload), key_hash,
                        [this, issued_at]() {
                            openLoopComplete(issued_at, true);
                        });
        return;
    }

    bool is_lock = cmd.verb() == "LOCK";
    lib_.bypass(std::move(payload), key_hash,
                [this, issued_at, is_lock](const Bytes &resp) {
                    if (is_lock) {
                        auto decoded = apps::decodeResponse(resp);
                        if (decoded && decoded->status ==
                                           apps::RespStatus::Locked)
                            // Open loop never blocks on a critical
                            // section; the conflict is only counted.
                            lockConflicts_++;
                    }
                    openLoopComplete(issued_at, false);
                });
}

void
ClientDriver::openLoopComplete(Tick issued_at, bool is_update)
{
    outstanding_--;
    record(issued_at, is_update);
}

} // namespace pmnet::testbed
