/**
 * @file
 * Full-system assembly: builds the topology, hosts, PMNet devices,
 * software libraries and drivers for one experiment configuration,
 * and runs warmup + measurement windows.
 *
 * Topologies (paper Section VI-A1):
 *
 *   ClientServer / *SideLogging:
 *     clients -- ToR switch -- server
 *
 *   PmnetSwitch (replicationDegree R chains R devices, Fig 9a):
 *     clients -- merge switch -- PMNet#1 -- ... -- PMNet#R -- server
 *
 *   PmnetNic (bump-in-the-wire, Microsoft-style):
 *     clients -- ToR switch -- PMNet-NIC == server   (50 ns wire)
 *
 *   PmnetSwitch with TestbedConfig::shards = N > 1 (DESIGN.md §14):
 *     clients -- merge switch ==> N independent chains, one server
 *     each; a consistent-hash ShardMap routes every keyed request to
 *     its owning shard's chain.
 *
 * Failure injection for the recovery experiments drives Node power
 * hooks: the server's ServerLib reloads its PM state and polls every
 * device with RecoveryPoll; devices lose SRAM queues but keep logs.
 */

#ifndef PMNET_TESTBED_SYSTEM_H
#define PMNET_TESTBED_SYSTEM_H

#include "apps/kv_protocol.h"
#include "net/topology.h"
#include "obs/flight_recorder.h"
#include "obs/metric_registry.h"
#include "pmnet/shard_map.h"
#include "testbed/driver.h"

namespace pmnet::testbed {

/** Snapshot of one measured window. */
struct RunResults
{
    double opsPerSecond = 0;
    LatencySeries updateLatency;
    LatencySeries readLatency;
    LatencySeries allLatency;
    std::uint64_t lockConflicts = 0;
    std::uint64_t cacheResponses = 0;
    std::uint64_t updatesLogged = 0;
    /**
     * Five-way latency attribution of every request completed in the
     * window (count 0 unless TestbedConfig::observability was on).
     */
    obs::FlightRecorder::Accum breakdown;

    /**
     * The one canonical serialization (ops/s, the three latency
     * summaries, counters, breakdown) — every tool emits run results
     * through this, wrapped in an obs::Snapshot.
     */
    obs::Json toJson() const;
};

/** One assembled system under test. */
class Testbed
{
  public:
    explicit Testbed(TestbedConfig config);
    ~Testbed();

    Testbed(const Testbed &) = delete;
    Testbed &operator=(const Testbed &) = delete;

    /**
     * Start all drivers (staggered), run @p warmup, then measure for
     * @p measure simulated time and return the window's results.
     */
    RunResults run(TickDelta warmup, TickDelta measure);

    /** @name Manual control (failure/recovery experiments)
     *  @{
     */
    void startDrivers();
    void beginMeasurement();
    RunResults endMeasurement();

    /**
     * The shared simulator. @pre simThreads == 0: a partitioned
     * testbed has one clock per node — use now()/runFor()/runUntil()
     * for time control and Node::simulator() to schedule against a
     * specific node's partition.
     */
    sim::Simulator &simulator();

    /** The partitioned engine; null when simThreads == 0. */
    sim::Engine *engine() { return engine_.get(); }

    /** Current simulated time, in either threading mode. */
    Tick now() const;

    /** Advance simulated time (engine- or simulator-backed). */
    void runUntil(Tick until);
    void runFor(TickDelta duration) { runUntil(now() + duration); }
    /** @} */

    /** @name Component access
     * The server-side accessors take a shard index (default 0, the
     * only shard of a classic single-chain testbed). device(i)
     * indexes the flat device list: all shards' chains concatenated
     * in shard order, head-to-tail within a shard.
     *  @{
     */
    stack::Host &serverHost(std::size_t s = 0)
    {
        return *shardUnits_[s].serverHost;
    }
    stack::ServerLib &serverLib(std::size_t s = 0)
    {
        return *shardUnits_[s].serverLib;
    }
    pm::PmHeap &serverHeap(std::size_t s = 0)
    {
        return *shardUnits_[s].heap;
    }
    apps::CommandStore *commandStore(std::size_t s = 0)
    {
        return shardUnits_[s].store.get();
    }
    unsigned shardCount() const
    {
        return static_cast<unsigned>(shardUnits_.size());
    }
    /** The consistent-hash router; null when shards == 1. */
    pmnet::ShardMap *shardMap() { return shardMap_.get(); }
    std::size_t deviceCount() const { return devices_.size(); }
    pmnetdev::PmnetDevice &device(std::size_t i) { return *devices_[i]; }
    std::size_t shardDeviceCount(std::size_t s) const
    {
        return shardUnits_[s].devices.size();
    }
    pmnetdev::PmnetDevice &shardDevice(std::size_t s, std::size_t d)
    {
        return *shardUnits_[s].devices[d];
    }
    std::size_t clientCount() const { return clients_.size(); }
    stack::ClientLib &clientLib(std::size_t i);
    stack::Host &clientHost(std::size_t i) { return *clients_[i].host; }
    ClientDriver &driver(std::size_t i) { return *drivers_[i]; }
    const TestbedConfig &config() const { return config_; }
    /** @} */

    /** @name Observability (DESIGN.md section 11)
     * Every component registers its counters in metrics() at
     * construction; the flight recorder exists only when
     * TestbedConfig::observability is set.
     *  @{
     */
    obs::MetricRegistry &metrics() { return metrics_; }
    const obs::MetricRegistry &metrics() const { return metrics_; }
    obs::FlightRecorder *flightRecorder() { return recorder_.get(); }

    /**
     * Registry path prefixes for the indexed components, matching the
     * names wireObservability() registered ("deviceN" single-shard,
     * "shard.S.deviceN" multi-shard). Combine with metrics().value():
     *
     *   bed.metrics().value(bed.devicePrefix(0) + ".updatesLogged")
     */
    std::string clientPrefix(std::size_t i) const;
    std::string serverPrefix(std::size_t s = 0) const;
    std::string devicePrefix(std::size_t i) const;
    /** @} */

    /** Total requests completed by every driver. */
    std::uint64_t totalCompleted() const;

    /**
     * Observer of every command the server applies (after decode,
     * before execution), in application order. The fault harness's
     * invariant checker records the per-session apply sequence here to
     * assert replay ordering; an unset tap costs one branch.
     */
    using HandlerTap = std::function<void(
        std::uint16_t session, bool is_update, const apps::Command &cmd)>;

    void setHandlerTap(HandlerTap tap) { handlerTap_ = std::move(tap); }

  private:
    struct Client
    {
        stack::Host *host = nullptr;
        std::unique_ptr<stack::ClientLib> lib;
    };

    /**
     * Per-driver measurement shard. Each driver records only into its
     * own shard (its partition owns it — no sharing, no locks);
     * endMeasurement merges the shards in driver order into the
     * run-level series. Used in both threading modes so the sample
     * streams are identical by construction, and safe for the summary
     * outputs either way: percentiles/CDFs sort, and the mean's
     * double accumulation of integer tick values stays below 2^53, so
     * merge order cannot change any emitted figure.
     */
    struct DriverShard
    {
        LatencySeries updateLatency;
        LatencySeries readLatency;
        LatencySeries allLatency;
        ThroughputMeter meter;
    };

    void buildTopology();
    void buildServerApp();
    void buildClients();
    void installHandler();
    void installHandlerFor(std::size_t s);
    void wireObservability();

    TestbedConfig config_;
    sim::Simulator sim_; ///< unused when engine_ is set
    /** Declared before topo_: nodes reference engine partitions, so
     *  the topology must be destroyed first (reverse member order). */
    std::unique_ptr<sim::Engine> engine_;
    std::unique_ptr<net::Topology> topo_;

    obs::MetricRegistry metrics_;
    std::unique_ptr<obs::FlightRecorder> recorder_;
    net::BasicSwitch *tor_ = nullptr;

    /**
     * One fabric shard: an independent server (own heap/store) fed by
     * its own PMNet replication chain off the shared ToR. A classic
     * single-chain testbed is exactly one ShardUnit.
     */
    struct ShardUnit
    {
        stack::Host *serverHost = nullptr;
        std::unique_ptr<pm::PmHeap> heap;
        std::unique_ptr<stack::ServerLib> serverLib;
        std::unique_ptr<apps::CommandStore> store;
        std::vector<pmnetdev::PmnetDevice *> devices; ///< head..tail
    };

    std::vector<ShardUnit> shardUnits_;
    std::unique_ptr<pmnet::ShardMap> shardMap_; ///< shards > 1 only
    apps::KvCacheCodec codec_;

    std::vector<pmnetdev::PmnetDevice *> devices_;
    std::vector<Client> clients_;
    std::vector<std::unique_ptr<ClientDriver>> drivers_;
    std::vector<std::unique_ptr<DriverShard>> shards_;

    HandlerTap handlerTap_;

    LatencySeries updateLatency_;
    LatencySeries readLatency_;
    LatencySeries allLatency_;
    ThroughputMeter meter_;
    bool measuring_ = false;
    bool driversStarted_ = false;

    Rng rng_;
};

} // namespace pmnet::testbed

#endif // PMNET_TESTBED_SYSTEM_H
