/**
 * @file
 * Testbed configuration: every calibration constant of the reproduced
 * system lives here (paper Table II and Section V-A).
 *
 * Calibration story (see DESIGN.md §5): the constants are chosen so
 * the ideal-handler microbenchmark lands near the paper's Fig 18
 * measurements at 100 B payloads —
 *
 *   PMNet RTT          ~ 21.5 us  (client stacks + wire + persist)
 *   Client-Server RTT  ~ 60 us    (+ server stacks + dispatch)
 *
 * from which the relative results of Figs 15/16/19/20/21/22 follow.
 * Only ratios/shapes are reproduction targets, not absolute numbers.
 */

#ifndef PMNET_TESTBED_CONFIG_H
#define PMNET_TESTBED_CONFIG_H

#include <functional>
#include <memory>

#include "apps/workloads.h"
#include "common/stats.h"
#include "kv/kv_store.h"
#include "net/link.h"
#include "pmnet/device.h"
#include "stack/client_lib.h"
#include "stack/server_lib.h"
#include "stack/stack_model.h"

namespace pmnet::testbed {

/** Which system design the testbed assembles (Sections VI-A4, VI-B2). */
enum class SystemMode {
    ClientServer,      ///< baseline: clients - ToR switch - server
    PmnetSwitch,       ///< PMNet as the server rack's ToR switch
    PmnetNic,          ///< PMNet as bump-in-the-wire server NIC
    ClientSideLogging, ///< alternative design, Fig 17a (parametric)
    ServerSideLogging, ///< alternative design, Fig 17b
};

const char *systemModeName(SystemMode mode);

/** What the server runs. */
enum class ServerKind {
    Ideal,        ///< ideal request handler (Section VI-B1)
    CommandStore, ///< real persistent KV/Redis store
};

/** Factory producing each client's workload (by session id). */
using WorkloadFactory =
    std::function<std::unique_ptr<apps::Workload>(std::uint16_t)>;

/** Full system configuration. */
struct TestbedConfig
{
    SystemMode mode = SystemMode::PmnetSwitch;
    int clientCount = 1;

    /** Chained PMNet devices (Section IV-C replication); 1 = plain. */
    unsigned replicationDegree = 1;

    /**
     * PMNet fabric shards (DESIGN.md §14). 1 keeps the historical
     * single-chain topology byte-identical. With N > 1, the testbed
     * builds N independent replication chains — each with its own
     * server, heap and store — hanging off the shared ToR, and a
     * consistent-hash ShardMap routes every request by its key hash.
     * Requires PmnetSwitch mode and ServerKind::CommandStore (the
     * routing is keyed; ideal handlers have no keys).
     */
    unsigned shards = 1;

    /**
     * Virtual nodes per shard on the consistent-hash ring; more
     * vnodes = more even key-space split per shard.
     */
    unsigned shardVnodes = pmnet::ShardMap::kDefaultVnodes;

    /**
     * Open-loop clients: instead of issuing the next command when the
     * previous completes, each driver fires one command every
     * openLoopGap (ticks of its own partition clock), up to
     * openLoopMaxOutstanding in flight — the 1024-client shard
     * scaling regime. 0 keeps the closed-loop driver.
     */
    TickDelta openLoopGap = 0;

    /** In-flight cap per open-loop client (issue ticks skip when full). */
    std::size_t openLoopMaxOutstanding = 64;

    /** Enable the in-switch read cache (on the device next to the
     *  server). */
    bool cacheEnabled = false;

    /** libVMA-style user-space stacks on every host (Sec VI-B7). */
    bool vmaStack = false;

    /**
     * Use device-driven heartbeat failure detection (Fig 3) instead
     * of server-initiated RecoveryPolls: devices probe the server,
     * declare it down after missed acks, and replay their logs
     * autonomously when it answers again.
     */
    bool deviceHeartbeat = false;

    /**
     * Stack cost multiplier for workloads converted from TCP to the
     * UDP-based PMNet protocol (Section VI-A3: 9% => 1.09).
     */
    double stackScale = 1.0;

    /**
     * The workload is natively TCP (Redis/Twitter/TPCC): baselines
     * run the original TCP stack, PMNet modes run the UDP-converted
     * protocol with the 9% conversion overhead (Section VI-A3).
     */
    bool tcpWorkload = false;

    /**
     * Server-side replication delay added to every update commit in
     * the baseline replication comparison (Fig 21); 0 disables.
     */
    TickDelta serverReplicationCommitDelay = 0;

    /**
     * Route RMW verbs (INCR/INCRBY/APPEND/CAS) as NearDataReq
     * packets: still logged in-network like updates, but a PMNet
     * device holding the key in its cache computes and answers the
     * RMW in-flight (NearPM-style near-data op). Off keeps them
     * ordinary update-req commands.
     */
    bool nearDataOps = false;

    ServerKind serverKind = ServerKind::CommandStore;
    kv::KvKind storeKind = kv::KvKind::Hashmap;

    /** Ideal request handler cost (Section VI-B1 microbenchmark). */
    TickDelta idealHandlerCost = microseconds(1.5);

    /**
     * Fixed application overhead per CommandStore request beyond the
     * PM work (protocol parsing/event loop of a full server like
     * Redis); the PMDK micro-workloads use 0.
     */
    TickDelta appOverhead = 0;

    /** Per-client workload; defaults to update-only 100 B YCSB. */
    WorkloadFactory workload;

    /** Server PM pool size. */
    std::uint64_t heapBytes = 256ull << 20;

    /** Master seed; every client derives its own stream. */
    std::uint64_t seed = 42;

    /**
     * Simulation threading. 0 (default) keeps the historical layout:
     * one Simulator shared by every node, advanced on the calling
     * thread. >= 1 builds the partitioned engine instead — one event
     * queue per node, link-latency lookahead windows — advanced by
     * this many worker threads. The partition layout depends only on
     * the topology, never on the worker count, so results are
     * byte-identical across simThreads values >= 1 (and match 0 for
     * every published figure output; see DESIGN.md section 12).
     */
    unsigned simThreads = 0;

    /** @name Observability (DESIGN.md section 11)
     * Metric registration is always on (it only attaches pointers to
     * the counters the components bump anyway). observability
     * additionally arms the per-request flight recorder: every
     * component on the request path stamps pipeline checkpoints, and
     * RunResults carries the five-way latency breakdown. Off by
     * default so measurement runs stay byte-identical to pre-obs
     * builds.
     *  @{
     */
    bool observability = false;
    /** Flight-recorder trace slots (oldest evicted on wrap-around). */
    std::size_t flightSlots = 4096;
    /** @} */

    /**
     * How the run's latency series store samples: Exact keeps every
     * raw sample (exact percentiles/CDFs — tests, small runs);
     * Streaming feeds a bounded-error histogram (the big sweep grids
     * opt in to keep millions of samples O(1)-cheap to record).
     */
    StatsMode statsMode = StatsMode::Exact;

    // ------------------------------------------------ substrate knobs

    net::LinkConfig link;           ///< 10 Gbps, 300 ns per hop
    TickDelta plainSwitchLatency = nanoseconds(500);
    pmnetdev::DeviceConfig device;  ///< 273 ns PM, 4 KB queues
    stack::ServerConfig server;     ///< 20 workers, 12 us dispatch
    stack::ClientConfig clientDefaults; ///< timeout, MTU

    /**
     * Parametric pieces of the alternative designs (Fig 18): the
     * client-side logger's local IPC+log delay, and the extra
     * replication delays. Derived from the same calibrated constants.
     */
    TickDelta clientLocalLogDelay = microseconds(10.4);
    TickDelta clientLogReplicationDelay = microseconds(41.6);
    TickDelta serverLogReplicationDelay = microseconds(46.0);

    /** True when this mode routes PMNet traffic through a device. */
    bool
    pmnetMode() const
    {
        return mode == SystemMode::PmnetSwitch ||
               mode == SystemMode::PmnetNic;
    }

    /** Extra multiplier for TCP-to-UDP conversion on PMNet modes. */
    double
    effectiveStackScale() const
    {
        double scale = stackScale;
        if (tcpWorkload && pmnetMode())
            scale *= 1.09; // Section VI-A3
        return scale;
    }

    /** Client/server stack profiles (derived from vmaStack etc.). */
    stack::StackProfile
    clientProfile() const
    {
        stack::StackProfile p;
        if (vmaStack)
            p = stack::StackProfile::vmaClient();
        else if (tcpWorkload && !pmnetMode())
            p = stack::StackProfile::tcpClient();
        else
            p = stack::StackProfile::kernelClient();
        return p.scaled(effectiveStackScale());
    }

    stack::StackProfile
    serverProfile() const
    {
        stack::StackProfile p;
        if (vmaStack)
            p = stack::StackProfile::vmaServer();
        else if (tcpWorkload && !pmnetMode())
            p = stack::StackProfile::tcpServer();
        else
            p = stack::StackProfile::kernelServer();
        return p.scaled(effectiveStackScale());
    }

    /** Effective dispatch latency (smaller under VMA, larger TCP). */
    TickDelta
    dispatchLatency() const
    {
        if (vmaStack)
            return microseconds(8.0);
        if (tcpWorkload && !pmnetMode())
            return microseconds(20.0);
        return server.dispatchLatency;
    }
};

} // namespace pmnet::testbed

#endif // PMNET_TESTBED_CONFIG_H
