#include "testbed/sweep.h"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <utility>

namespace pmnet::testbed {

unsigned
sweepThreadCount(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("PMNET_SWEEP_THREADS")) {
        long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::vector<RunResults>
runSweepJobs(std::vector<SweepJob> jobs, unsigned threads)
{
    std::vector<RunResults> results(jobs.size());
    if (jobs.empty())
        return results;

    unsigned workers = sweepThreadCount(threads);
    if (workers > jobs.size())
        workers = static_cast<unsigned>(jobs.size());

    if (workers <= 1) {
        for (std::size_t i = 0; i < jobs.size(); i++)
            results[i] = jobs[i]();
        return results;
    }

    // Work-stealing by atomic ticket: completion order is arbitrary,
    // result placement is positional, and each job's simulation state
    // is private, so parallel and serial execution are bit-identical.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;
            results[i] = jobs[i]();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; w++)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return results;
}

std::vector<RunResults>
runSweep(std::vector<TestbedConfig> configs, TickDelta warmup,
         TickDelta measure, unsigned threads)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(configs.size());
    for (TestbedConfig &config : configs) {
        jobs.push_back([config = std::move(config), warmup,
                        measure]() mutable {
            Testbed bed(std::move(config));
            return bed.run(warmup, measure);
        });
    }
    return runSweepJobs(std::move(jobs), threads);
}

} // namespace pmnet::testbed
