#include "testbed/system.h"

#include "common/logging.h"
#include "sim/parallel.h"

namespace pmnet::testbed {

const char *
systemModeName(SystemMode mode)
{
    switch (mode) {
      case SystemMode::ClientServer: return "client-server";
      case SystemMode::PmnetSwitch: return "pmnet-switch";
      case SystemMode::PmnetNic: return "pmnet-nic";
      case SystemMode::ClientSideLogging: return "client-side-logging";
      case SystemMode::ServerSideLogging: return "server-side-logging";
    }
    return "unknown";
}

Testbed::Testbed(TestbedConfig config)
    : config_(std::move(config)), rng_(config_.seed)
{
    if (config_.clientCount <= 0)
        fatal("Testbed: clientCount must be positive");
    if (config_.replicationDegree == 0)
        fatal("Testbed: replicationDegree must be >= 1");
    if (config_.shards == 0)
        fatal("Testbed: shards must be >= 1");
    if (config_.shards > 1) {
        if (config_.mode != SystemMode::PmnetSwitch)
            fatal("Testbed: shards > 1 requires PmnetSwitch mode "
                  "(the fabric routes through PMNet chains)");
        if (config_.serverKind != ServerKind::CommandStore)
            fatal("Testbed: shards > 1 requires a CommandStore server "
                  "(consistent-hash routing is keyed)");
    }
    updateLatency_.setMode(config_.statsMode);
    readLatency_.setMode(config_.statsMode);
    allLatency_.setMode(config_.statsMode);
    if (!config_.workload) {
        config_.workload = [](std::uint16_t session) {
            apps::YcsbConfig ycsb;
            return apps::makeYcsbWorkload(ycsb, session);
        };
    }

    buildTopology();
    buildServerApp();
    buildClients();
    installHandler();
    wireObservability();
}

Testbed::~Testbed() = default;

sim::Simulator &
Testbed::simulator()
{
    if (engine_)
        fatal("Testbed::simulator: partitioned testbed (simThreads=%u) "
              "has one clock per node; use now()/runUntil() or a "
              "node's own simulator()",
              config_.simThreads);
    return sim_;
}

Tick
Testbed::now() const
{
    return engine_ ? engine_->now() : sim_.now();
}

void
Testbed::runUntil(Tick until)
{
    if (engine_)
        engine_->run(until);
    else
        sim_.run(until);
}

void
Testbed::buildTopology()
{
    if (config_.simThreads > 0) {
        engine_ = std::make_unique<sim::Engine>(config_.simThreads);
        // Workers that execute partition events also acquire/release
        // pooled packets; arm every executing thread's pool for
        // cross-thread releases before the first event runs.
        engine_->setThreadInit(
            []() { net::PacketPool::local().enableConcurrent(); });
        topo_ = std::make_unique<net::Topology>(*engine_);
    } else {
        topo_ = std::make_unique<net::Topology>(sim_);
    }

    shardUnits_.resize(config_.shards);
    bool multi = config_.shards > 1;
    if (multi)
        shardMap_ = std::make_unique<pmnet::ShardMap>(
            config_.shards, config_.shardVnodes);

    // Node-creation order fixes NodeIds and engine partitions:
    // [server0, tor, clients..., shard0 devices..., server1, shard1
    // devices..., ...]. At shards == 1 this is exactly the historical
    // layout, so every published figure stays byte-identical.
    shardUnits_[0].serverHost = &topo_->addNode<stack::Host>(
        multi ? "server0" : "server", config_.serverProfile());

    bool pmnet_mode = config_.mode == SystemMode::PmnetSwitch ||
                      config_.mode == SystemMode::PmnetNic;
    unsigned device_count =
        pmnet_mode ? (config_.mode == SystemMode::PmnetNic
                          ? 1
                          : config_.replicationDegree)
                   : 0;

    auto &tor = topo_->addNode<net::BasicSwitch>(
        "tor", config_.plainSwitchLatency);
    tor_ = &tor;

    // Clients hang off the merge/ToR switch.
    for (int i = 0; i < config_.clientCount; i++) {
        auto &host = topo_->addNode<stack::Host>(
            "client" + std::to_string(i), config_.clientProfile());
        topo_->connect(host, tor, config_.link);
        clients_.push_back(Client{&host, nullptr});
    }

    // Per shard: chain PMNet devices between the switch and that
    // shard's server.
    for (unsigned s = 0; s < config_.shards; s++) {
        ShardUnit &unit = shardUnits_[s];
        if (s > 0)
            unit.serverHost = &topo_->addNode<stack::Host>(
                "server" + std::to_string(s), config_.serverProfile());

        net::Node *tail = &tor;
        for (unsigned d = 0; d < device_count; d++) {
            std::string name =
                multi ? "s" + std::to_string(s) + ".pmnet" +
                            std::to_string(d)
                      : "pmnet" + std::to_string(d);
            auto &dev = topo_->addNode<pmnetdev::PmnetDevice>(
                name, config_.device);
            topo_->connect(*tail, dev, config_.link);
            unit.devices.push_back(&dev);
            devices_.push_back(&dev);
            tail = &dev;
        }

        net::LinkConfig last = config_.link;
        if (config_.mode == SystemMode::PmnetNic) {
            // Bump-in-the-wire: the device sits on the server's NIC
            // slot.
            last.propagation = nanoseconds(50);
        }
        topo_->connect(*tail, *unit.serverHost, last);
    }

    topo_->computeRoutes();

    if (config_.cacheEnabled) {
        if (devices_.empty())
            fatal("Testbed: cacheEnabled requires a PMNet mode");
        // The device adjacent to each server is the rack's ToR in the
        // paper's caching setup (Section IV-D).
        for (auto &unit : shardUnits_)
            unit.devices.back()->enableCache(&codec_);
    }
}

void
Testbed::buildServerApp()
{
    stack::ServerConfig server_config = config_.server;
    server_config.dispatchLatency = config_.dispatchLatency();
    // Session ids are 1-based client indices; a fabric-scale client
    // fleet (8 shards x 128 clients) walks past the default 1024-slot
    // watermark table, so grow it to fit. Smaller fleets keep the
    // default, and the table only costs heap bytes at setup (which
    // drainCost() discards), so existing runs are unchanged.
    if (config_.clientCount + 1 >
        static_cast<int>(server_config.maxSessions))
        server_config.maxSessions =
            static_cast<std::uint32_t>(config_.clientCount + 1);
    if (config_.mode == SystemMode::ServerSideLogging) {
        server_config.ackOnArrival = true;
        server_config.arrivalAckExtraDelay =
            config_.replicationDegree > 1
                ? config_.serverLogReplicationDelay
                : 0;
    }

    for (auto &unit : shardUnits_) {
        unit.heap = std::make_unique<pm::PmHeap>(config_.heapBytes);
        unit.serverLib = std::make_unique<stack::ServerLib>(
            *unit.serverHost, *unit.heap, server_config);
        if (config_.deviceHeartbeat) {
            // Devices detect the failure themselves and replay on
            // their own; the server never polls.
            for (auto *dev : unit.devices)
                dev->enableHeartbeat(unit.serverHost->id());
        } else {
            std::vector<net::NodeId> device_ids;
            for (auto *dev : unit.devices)
                device_ids.push_back(dev->id());
            unit.serverLib->setDevices(std::move(device_ids));
        }
    }

    if (config_.serverKind == ServerKind::CommandStore) {
        // Preload the dataset offline (not simulated, not charged).
        // One rng_ split regardless of shard count; every shard
        // populates from a copy, so each preloads the identical full
        // dataset — ownerOf decides which replica serves each key.
        Rng populate_rng = rng_.split();
        for (std::size_t s = 0; s < shardUnits_.size(); s++) {
            ShardUnit &unit = shardUnits_[s];
            unit.store = std::make_unique<apps::CommandStore>(
                *unit.heap, config_.storeKind);
            unit.serverLib->setAppRoot(unit.store->persistentRoot());
            unit.serverLib->setRecoveryHook([this, s]() {
                ShardUnit &u = shardUnits_[s];
                u.store = std::make_unique<apps::CommandStore>(
                    *u.heap, u.serverLib->appRoot());
            });

            Rng shard_rng = populate_rng;
            auto seed_workload = config_.workload(0);
            seed_workload->populate(*unit.store, shard_rng);
            unit.heap->drainCost();
        }
    }
}

void
Testbed::installHandler()
{
    for (std::size_t s = 0; s < shardUnits_.size(); s++)
        installHandlerFor(s);
}

void
Testbed::installHandlerFor(std::size_t s)
{
    shardUnits_[s].serverLib->setHandler(
        [this, s](std::uint16_t session, bool is_update,
                  bool is_near_data,
                  const Bytes &payload) -> stack::ServerLib::HandlerResult {
            stack::ServerLib::HandlerResult result;
            if (config_.serverKind == ServerKind::Ideal) {
                result.cost = config_.idealHandlerCost;
                if (is_update)
                    result.cost += config_.serverReplicationCommitDelay;
                if (!is_update || is_near_data)
                    result.response = apps::encodeResponse(
                        apps::RespStatus::Ok, "OK");
                return result;
            }
            auto cmd = apps::decodeCommand(payload);
            if (!cmd) {
                result.response = apps::encodeResponse(
                    apps::RespStatus::Error, "malformed");
                return result;
            }
            if (handlerTap_)
                handlerTap_(session, is_update, *cmd);
            Bytes response =
                shardUnits_[s].store->executeToResponse(*cmd, session);
            result.cost += config_.appOverhead;
            // Ordinary updates complete on ACKs alone; near-data RMWs
            // additionally return the computed value.
            if (!is_update || is_near_data)
                result.response = std::move(response);
            // Baseline server-side replication (Fig 21): committing
            // includes syncing the replicas before the ACK leaves.
            if (is_update)
                result.cost += config_.serverReplicationCommitDelay;
            return result;
        });
}

void
Testbed::buildClients()
{
    std::vector<net::NodeId> shard_servers;
    if (shardMap_) {
        for (auto &unit : shardUnits_)
            shard_servers.push_back(unit.serverHost->id());
    }

    for (int i = 0; i < config_.clientCount; i++) {
        stack::ClientConfig client_config = config_.clientDefaults;
        client_config.server = shardUnits_[0].serverHost->id();
        client_config.sessionId = static_cast<std::uint16_t>(i + 1);
        client_config.replicationDegree =
            config_.mode == SystemMode::PmnetSwitch
                ? config_.replicationDegree
                : 1;
        auto &client = clients_[static_cast<std::size_t>(i)];
        client.lib = std::make_unique<stack::ClientLib>(*client.host,
                                                        client_config);
        if (shardMap_)
            client.lib->setShardMap(shardMap_.get(), shard_servers);
    }

    for (int i = 0; i < config_.clientCount; i++) {
        auto shard = std::make_unique<DriverShard>();
        shard->updateLatency.setMode(config_.statsMode);
        shard->readLatency.setMode(config_.statsMode);
        shard->allLatency.setMode(config_.statsMode);

        DriverSinks sinks;
        sinks.updateLatency = &shard->updateLatency;
        sinks.readLatency = &shard->readLatency;
        sinks.allLatency = &shard->allLatency;
        sinks.meter = &shard->meter;
        sinks.measuring = &measuring_;
        shards_.push_back(std::move(shard));

        // The driver lives on its client's partition (== sim_ in
        // single-simulator mode).
        std::uint16_t session = static_cast<std::uint16_t>(i + 1);
        Client &client = clients_[static_cast<std::size_t>(i)];
        drivers_.push_back(std::make_unique<ClientDriver>(
            client.host->simulator(), *client.lib,
            config_.workload(session), rng_.split(), sinks, config_));
    }
}

stack::ClientLib &
Testbed::clientLib(std::size_t i)
{
    return *clients_[i].lib;
}

std::string
Testbed::clientPrefix(std::size_t i) const
{
    return "client" + std::to_string(i);
}

std::string
Testbed::serverPrefix(std::size_t s) const
{
    if (shardUnits_.size() == 1)
        return "server";
    return "shard." + std::to_string(s) + ".server";
}

std::string
Testbed::devicePrefix(std::size_t i) const
{
    if (shardUnits_.size() == 1)
        return "device" + std::to_string(i);
    // The flat device list concatenates the shards' chains in shard
    // order, so peel whole chains off the front to find the owner.
    for (std::size_t s = 0; s < shardUnits_.size(); s++) {
        std::size_t chain = shardUnits_[s].devices.size();
        if (i < chain)
            return "shard." + std::to_string(s) + ".device" +
                   std::to_string(i);
        i -= chain;
    }
    fatal("Testbed::devicePrefix: device index out of range");
}

void
Testbed::wireObservability()
{
    // Metric registration is unconditional: it only records pointers
    // to counters the components bump anyway, and makes
    // metrics().toJson() the one source of truth for every tool.
    for (std::size_t i = 0; i < clients_.size(); i++)
        clients_[i].lib->registerMetrics(metrics_,
                                         "client" + std::to_string(i));
    if (shardUnits_.size() == 1) {
        // Historical names, so every existing tool/golden still finds
        // "server" and "deviceN".
        shardUnits_[0].serverLib->registerMetrics(metrics_, "server");
        for (std::size_t d = 0; d < devices_.size(); d++)
            devices_[d]->registerMetrics(metrics_,
                                         "device" + std::to_string(d));
    } else {
        for (std::size_t s = 0; s < shardUnits_.size(); s++) {
            std::string prefix = "shard." + std::to_string(s);
            shardUnits_[s].serverLib->registerMetrics(
                metrics_, prefix + ".server");
            const auto &devs = shardUnits_[s].devices;
            for (std::size_t d = 0; d < devs.size(); d++)
                devs[d]->registerMetrics(
                    metrics_, prefix + ".device" + std::to_string(d));
        }
    }
    net::PacketPool::local().registerMetrics(metrics_, "packetPool");

    if (engine_) {
        // Engine-mode-only paths, so single-simulator snapshots stay
        // byte-identical to pre-engine builds.
        sim::Engine *eng = engine_.get();
        metrics_.probe("engine.workers", [eng]() {
            return obs::Json(static_cast<std::uint64_t>(eng->workers()));
        });
        metrics_.probe("engine.partitions", [eng]() {
            return obs::Json(
                static_cast<std::uint64_t>(eng->partitionCount()));
        });
        metrics_.probe("engine.windows", [eng]() {
            return obs::Json(eng->windows());
        });
        metrics_.probe("engine.events", [eng]() {
            return obs::Json(eng->eventsExecuted());
        });
    }

    if (!config_.observability)
        return;

    // The flight recorder is opt-in: stamping is cheap but not free,
    // and the figure binaries promise byte-identical output with it
    // off.
    recorder_ = std::make_unique<obs::FlightRecorder>(config_.flightSlots);
    if (engine_)
        recorder_->setConcurrent(true);
    obs::FlightRecorder *rec = recorder_.get();
    for (auto &client : clients_) {
        client.host->setRecorder(rec);
        client.lib->setRecorder(rec);
    }
    tor_->setRecorder(rec);
    for (auto *dev : devices_)
        dev->setRecorder(rec);
    for (auto &unit : shardUnits_) {
        unit.serverHost->setRecorder(rec);
        unit.serverLib->setRecorder(rec);
    }
}

void
Testbed::startDrivers()
{
    if (driversStarted_)
        return;
    driversStarted_ = true;
    TickDelta stagger = 0;
    for (auto &driver : drivers_) {
        driver->start(microseconds(1) + stagger);
        stagger += nanoseconds(350);
    }
}

void
Testbed::beginMeasurement()
{
    updateLatency_.clear();
    readLatency_.clear();
    allLatency_.clear();
    for (auto &shard : shards_) {
        shard->updateLatency.clear();
        shard->readLatency.clear();
        shard->allLatency.clear();
        shard->meter.start(now()); // resets the shard's count
    }
    if (recorder_) {
        recorder_->resetAccum();
        recorder_->setAccumulating(true);
    }
    measuring_ = true;
    meter_.start(now());
}

RunResults
Testbed::endMeasurement()
{
    meter_.stop(now());
    measuring_ = false;
    // Merge the per-driver shards in driver order (deterministic in
    // either threading mode; see DriverShard).
    for (auto &shard : shards_) {
        updateLatency_.merge(shard->updateLatency);
        readLatency_.merge(shard->readLatency);
        allLatency_.merge(shard->allLatency);
        meter_.addCompleted(shard->meter.completed());
    }

    RunResults results;
    results.opsPerSecond = meter_.completed() > 0
                               ? meter_.opsPerSecond()
                               : 0.0;
    results.updateLatency = updateLatency_;
    results.readLatency = readLatency_;
    results.allLatency = allLatency_;
    for (const auto &driver : drivers_)
        results.lockConflicts += driver->lockConflicts();
    for (std::size_t d = 0; d < devices_.size(); d++) {
        std::string prefix = devicePrefix(d);
        results.cacheResponses +=
            metrics_.value(prefix + ".cacheResponses");
        results.updatesLogged +=
            metrics_.value(prefix + ".updatesLogged");
    }
    if (recorder_) {
        recorder_->setAccumulating(false);
        results.breakdown = recorder_->accum();
    }
    return results;
}

obs::Json
RunResults::toJson() const
{
    obs::Json out = obs::Json::object();
    out.set("ops_per_second", opsPerSecond);
    out.set("update_latency", obs::latencySummaryJson(updateLatency));
    out.set("read_latency", obs::latencySummaryJson(readLatency));
    out.set("all_latency", obs::latencySummaryJson(allLatency));
    out.set("lock_conflicts", lockConflicts);
    out.set("cache_responses", cacheResponses);
    out.set("updates_logged", updatesLogged);
    out.set("breakdown", breakdown.toJson());
    return out;
}

RunResults
Testbed::run(TickDelta warmup, TickDelta measure)
{
    startDrivers();
    runFor(warmup);
    beginMeasurement();
    runFor(measure);
    return endMeasurement();
}

std::uint64_t
Testbed::totalCompleted() const
{
    std::uint64_t total = 0;
    for (const auto &driver : drivers_)
        total += driver->completedRequests();
    return total;
}

} // namespace pmnet::testbed
