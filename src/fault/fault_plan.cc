#include "fault/fault_plan.h"

#include <atomic>
#include <set>

#include "common/key.h"
#include "common/logging.h"

namespace pmnet::fault {

namespace {

/**
 * Workload stub for the fault runner: the testbed requires a factory,
 * but the runner scripts its own open-loop updates and starts no
 * drivers, and the store must begin empty so the final content is a
 * pure function of the scripted updates.
 */
class EmptyWorkload : public apps::Workload
{
  public:
    std::vector<apps::Command>
    nextTransaction(Rng &) override
    {
        return {};
    }

    void populate(apps::CommandStore &, Rng &) override {}

    std::string name() const override { return "fault-empty"; }
};

std::string
keyName(int session, int key_index)
{
    return "f" + std::to_string(session) + ":k" +
           std::to_string(key_index);
}

std::string
valueName(int session, int op_index)
{
    return "s" + std::to_string(session) + ":" +
           std::to_string(op_index);
}

/** Parse a valueName back into (session, op index); false if foreign. */
bool
parseValue(const std::string &value, int *session_out, int *op_out)
{
    if (value.size() < 4 || value[0] != 's')
        return false;
    std::size_t colon = value.find(':');
    if (colon == std::string::npos || colon == 1 ||
        colon + 1 >= value.size())
        return false;
    for (std::size_t i = 1; i < value.size(); i++) {
        if (i == colon)
            continue;
        if (value[i] < '0' || value[i] > '9')
            return false;
    }
    *session_out = std::stoi(value.substr(1, colon - 1));
    *op_out = std::stoi(value.substr(colon + 1));
    return true;
}

} // namespace

/** Per-session ground truth accumulated while the plan runs. */
struct FaultRunner::SessionTrack
{
    /** Op indices whose sendUpdate completion fired (client-acked). */
    std::set<int> acked;
    /**
     * Op indices in the order each shard's server applied them (via
     * the tap; the shard is re-derived from the command's key hash).
     * One entry with shards == 1 — the historical global order.
     */
    std::vector<std::vector<int>> appliedByShard;

    std::size_t
    appliedTotal() const
    {
        std::size_t total = 0;
        for (const auto &ops : appliedByShard)
            total += ops.size();
        return total;
    }
};

FaultRunner::FaultRunner(FaultRunConfig config) : config_(std::move(config))
{
    config_.testbed.serverKind = testbed::ServerKind::CommandStore;
    config_.testbed.workload = [](std::uint16_t) {
        return std::make_unique<EmptyWorkload>();
    };
    testbed_ = std::make_unique<testbed::Testbed>(config_.testbed);
    repairCoord_ = std::make_unique<ChainRepairCoordinator>(*testbed_);
}

FaultRunner::~FaultRunner() = default;

net::Link &
FaultRunner::resolveLink(const FaultAction &action)
{
    switch (action.where) {
      case FaultAction::Where::ServerLink:
        return *testbed_->serverHost().linkAt(0);
      case FaultAction::Where::ClientLink:
        return *testbed_
                    ->clientHost(static_cast<std::size_t>(action.index))
                    .linkAt(0);
      case FaultAction::Where::DeviceClientSide: {
        auto &dev = testbed_->device(static_cast<std::size_t>(action.index));
        net::Node *server_side =
            static_cast<std::size_t>(action.index) + 1 <
                    testbed_->deviceCount()
                ? static_cast<net::Node *>(&testbed_->device(
                      static_cast<std::size_t>(action.index) + 1))
                : static_cast<net::Node *>(&testbed_->serverHost());
        for (int p = 0; p < dev.portCount(); p++) {
            net::Link *link = dev.linkAt(p);
            if (&link->peerOf(dev) != server_side)
                return *link;
        }
        fatal("FaultRunner: device %d has no client-side link",
              action.index);
      }
    }
    fatal("FaultRunner: unknown link selector");
}

net::Node &
FaultRunner::transmitEndpoint(const FaultAction &action, net::Link &link,
                              bool toward_server)
{
    // Link state belongs to the *transmitting* end: server-bound
    // traffic leaves the end farther from the server, and vice versa.
    switch (action.where) {
      case FaultAction::Where::ServerLink:
        return toward_server
                   ? link.peerOf(testbed_->serverHost())
                   : static_cast<net::Node &>(testbed_->serverHost());
      case FaultAction::Where::ClientLink: {
        auto &host =
            testbed_->clientHost(static_cast<std::size_t>(action.index));
        return toward_server ? static_cast<net::Node &>(host)
                             : link.peerOf(host);
      }
      case FaultAction::Where::DeviceClientSide: {
        auto &dev =
            testbed_->device(static_cast<std::size_t>(action.index));
        return toward_server ? link.peerOf(dev)
                             : static_cast<net::Node &>(dev);
      }
    }
    fatal("FaultRunner: unknown link selector");
}

void
FaultRunner::scheduleAction(const FaultAction &action)
{
    // Every event is routed to the partition owning the touched state
    // (link direction, host, device); in single-simulator mode these
    // all resolve to the one shared simulator. Called from the
    // coordinating thread before the run, so scheduling directly on
    // foreign partitions is safe.
    Tick base_tick = testbed_->now();
    switch (action.kind) {
      case FaultAction::Kind::LossBurst: {
        net::Link *link = &resolveLink(action);
        double base = config_.testbed.link.lossRate;
        link->scheduleLossRateAt(base_tick + action.at, action.lossRate);
        link->scheduleLossRateAt(base_tick + action.at + action.duration,
                                 base);
        break;
      }
      case FaultAction::Kind::DropNext: {
        net::Link *link = &resolveLink(action);
        net::Node *from =
            &transmitEndpoint(action, *link, action.towardServer);
        link->scheduleDropNextAt(base_tick + action.at, *from,
                                 action.count);
        break;
      }
      case FaultAction::Kind::Impair: {
        net::Link *link = &resolveLink(action);
        auto arm = [&](bool toward_server) {
            net::Node &from =
                transmitEndpoint(action, *link, toward_server);
            link->scheduleImpairmentAt(base_tick + action.at, from,
                                       action.impair);
            if (action.duration > 0)
                link->scheduleImpairmentAt(
                    base_tick + action.at + action.duration, from,
                    net::Impairment{});
        };
        if (action.dir != FaultAction::Dir::TowardClient)
            arm(/*toward_server=*/true);
        if (action.dir != FaultAction::Dir::TowardServer)
            arm(/*toward_server=*/false);
        break;
      }
      case FaultAction::Kind::ServerPowerCut: {
        sim::Simulator &ssim = testbed_->serverHost().simulator();
        ssim.scheduleAt(base_tick + action.at,
                        [this] { testbed_->serverHost().powerFail(); });
        ssim.scheduleAt(base_tick + action.at + action.duration, [this] {
            testbed_->serverHost().powerRestore();
        });
        break;
      }
      case FaultAction::Kind::DevicePowerCut: {
        std::size_t idx = static_cast<std::size_t>(action.index);
        sim::Simulator &dsim = testbed_->device(idx).simulator();
        dsim.scheduleAt(base_tick + action.at, [this, idx] {
            testbed_->device(idx).powerFail();
        });
        dsim.scheduleAt(base_tick + action.at + action.duration,
                        [this, idx] {
                            testbed_->device(idx).powerRestore();
                        });
        break;
      }
      case FaultAction::Kind::DeviceReplace: {
        std::size_t idx = static_cast<std::size_t>(action.index);
        testbed_->device(idx).simulator().scheduleAt(
            base_tick + action.at,
            [this, idx] { testbed_->device(idx).replaceUnit(); });
        break;
      }
      case FaultAction::Kind::ChainRepair: {
        if (testbed_->shardMap() == nullptr)
            fatal("FaultRunner: ChainRepair requires shards > 1");
        std::size_t idx = static_cast<std::size_t>(action.index);
        // Flat device index -> (shard, index within the chain).
        unsigned shard = 0;
        std::size_t local = idx;
        while (local >= testbed_->shardDeviceCount(shard)) {
            local -= testbed_->shardDeviceCount(shard);
            shard++;
        }
        bool replace = action.replace;
        sim::Simulator &dsim = testbed_->device(idx).simulator();
        dsim.scheduleAt(base_tick + action.at, [this, idx, shard] {
            testbed_->device(idx).powerFail();
            testbed_->shardMap()->setHealth(
                shard, pmnet::ShardMap::Health::Failed);
        });
        dsim.scheduleAt(base_tick + action.at + action.duration,
                        [this, idx, shard, local, replace] {
                            if (replace)
                                testbed_->device(idx).replaceUnit();
                            else
                                testbed_->device(idx).powerRestore();
                            testbed_->shardMap()->setHealth(
                                shard,
                                pmnet::ShardMap::Health::Resilvering);
                            repairCoord_->beginRepair(shard, local);
                        });
        break;
      }
    }
}

void
FaultRunner::issueUpdates()
{
    Tick base_tick = testbed_->now();
    for (std::size_t c = 0; c < testbed_->clientCount(); c++) {
        // Each client's script runs on its own host's partition (the
        // shared simulator when simThreads == 0).
        sim::Simulator &sim = testbed_->clientHost(c).simulator();
        // Small per-client stagger so clients never tick in lockstep.
        TickDelta stagger = microseconds(1) * static_cast<TickDelta>(c);
        for (int i = 0; i < config_.updatesPerClient; i++) {
            Tick at = base_tick +
                      config_.issueGap * static_cast<TickDelta>(i + 1) +
                      stagger;
            sim.scheduleAt(at, [this, c, i] {
                int session = static_cast<int>(c) + 1;
                std::string key =
                    keyName(session, i % config_.keysPerSession);
                std::uint64_t key_hash = hashKey(key);
                apps::Command cmd{
                    {"SET", std::move(key), valueName(session, i)}};
                testbed_->clientLib(c).sendUpdate(
                    apps::encodeCommand(cmd), key_hash,
                    [this, c, i] { sessions_[c].acked.insert(i); });
            });
        }
    }
}

std::size_t
FaultRunner::outstandingTotal() const
{
    std::size_t total = 0;
    for (std::size_t c = 0; c < testbed_->clientCount(); c++)
        total += testbed_->clientLib(c).outstanding();
    return total;
}

void
FaultRunner::drain(const char *phase)
{
    int rounds = 0;
    // Windows advance along an absolute cursor, not from now(): the
    // simulator clock parks on the last executed event, so now()-based
    // windows stall forever when the next pending event (a client
    // retry timer, say) lies beyond one window.
    Tick target = testbed_->now();
    while (rounds < config_.maxDrainRounds &&
           (outstandingTotal() > 0 || !repairCoord_->idle())) {
        target += config_.drainWindow;
        testbed_->runUntil(target);
        // Between windows no partition event is executing — the one
        // place the repair coordinator may inspect cross-partition
        // device state and (re)start resilver streams.
        repairCoord_->poll();
        rounds++;
    }
    // One settle window: lets trailing server-ACKs pass the devices so
    // log invalidations and cache transitions finish.
    testbed_->runUntil(target + config_.drainWindow);
    if (!repairCoord_->idle())
        report_.addViolation(
            "liveness", std::string(phase) +
                            ": chain repair never completed within " +
                            std::to_string(config_.maxDrainRounds) +
                            " drain rounds");
    if (outstandingTotal() > 0)
        report_.addViolation(
            "liveness", std::string(phase) + ": " +
                            std::to_string(outstandingTotal()) +
                            " request(s) never completed within " +
                            std::to_string(config_.maxDrainRounds) +
                            " drain rounds");
}

unsigned
FaultRunner::shardOfKey(const std::string &key) const
{
    const pmnet::ShardMap *map = testbed_->shardMap();
    return map ? map->ownerOf(hashKey(key)) : 0;
}

void
FaultRunner::checkDurabilityAndOrder()
{
    unsigned shard_count = testbed_->shardCount();
    for (std::size_t c = 0; c < testbed_->clientCount(); c++) {
        const SessionTrack &track = sessions_[c];
        int session = static_cast<int>(c) + 1;
        std::set<int> applied;
        for (const auto &ops : track.appliedByShard)
            applied.insert(ops.begin(), ops.end());

        // The issue-order op stream, split by owning shard — the
        // ground truth both P1b and P2 compare against. An op's seq
        // number is its 1-based position within its shard's stream
        // (ClientLib numbers each shard's updates independently).
        std::vector<std::vector<int>> expected(shard_count);
        for (int i = 0; i < config_.updatesPerClient; i++) {
            unsigned shard = shardOfKey(
                keyName(session, i % config_.keysPerSession));
            expected[shard].push_back(i);
        }

        // P1a: every client-acked update was applied by its server.
        for (int i : track.acked) {
            if (applied.count(i) == 0)
                report_.addViolation(
                    "P1-durability",
                    "session " + std::to_string(session) + ": acked op " +
                        std::to_string(i) + " never applied");
        }

        for (unsigned s = 0; s < shard_count; s++) {
            const std::vector<int> &issue_order = expected[s];
            const std::vector<int> &applied_here =
                track.appliedByShard[s];

            // P1b: shard s's persisted watermark covers every acked
            // op it owns (op at position p carries SeqNum p+1 —
            // single-fragment updates in per-shard sequence spaces).
            std::uint32_t max_acked_seq = 0;
            for (std::size_t pos = 0; pos < issue_order.size(); pos++) {
                if (track.acked.count(issue_order[pos]))
                    max_acked_seq = static_cast<std::uint32_t>(pos + 1);
            }
            std::uint32_t watermark = testbed_->serverLib(s).appliedSeq(
                static_cast<std::uint16_t>(session));
            if (watermark < max_acked_seq)
                report_.addViolation(
                    "P1-durability",
                    "session " + std::to_string(session) + " shard " +
                        std::to_string(s) + ": persisted watermark " +
                        std::to_string(watermark) +
                        " below max acked seq " +
                        std::to_string(max_acked_seq));

            // P2: shard s applied its slice of the session's stream
            // exactly once, in issue order, gap-free.
            for (std::size_t pos = 0; pos < applied_here.size(); pos++) {
                if (pos >= issue_order.size() ||
                    applied_here[pos] != issue_order[pos]) {
                    report_.addViolation(
                        "P2-order",
                        "session " + std::to_string(session) + " shard " +
                            std::to_string(s) + ": applied op " +
                            std::to_string(applied_here[pos]) +
                            " at position " + std::to_string(pos));
                    break;
                }
            }
            if (applied_here.size() != issue_order.size())
                report_.addViolation(
                    "P2-order",
                    "session " + std::to_string(session) + " shard " +
                        std::to_string(s) + ": applied " +
                        std::to_string(applied_here.size()) + " of " +
                        std::to_string(issue_order.size()) + " ops");
        }
    }
}

void
FaultRunner::auditStore()
{
    int window = config_.keysPerSession < config_.updatesPerClient
                     ? config_.keysPerSession
                     : config_.updatesPerClient;
    for (std::size_t c = 0; c < testbed_->clientCount(); c++) {
        int session = static_cast<int>(c) + 1;
        for (int j = 0; j < window; j++) {
            // Last op index landing on key j.
            int last = j + config_.keysPerSession *
                               ((config_.updatesPerClient - 1 - j) /
                                config_.keysPerSession);
            std::string key = keyName(session, j);
            std::string expected = valueName(session, last);
            // The key's owning shard is the one server that must hold
            // its committed value.
            apps::CommandStore *store =
                testbed_->commandStore(shardOfKey(key));
            if (store == nullptr) {
                report_.addViolation("P1-durability",
                                     "command store missing");
                return;
            }
            apps::Command cmd{{"GET", key}};
            apps::CommandStore::Result res = store->execute(cmd, 0);
            if (res.status != apps::RespStatus::Ok ||
                res.value != expected)
                report_.addViolation(
                    "P1-durability",
                    "store key " + key + ": expected \"" +
                        expected + "\", found \"" + res.value +
                        "\" (status " +
                        std::to_string(static_cast<int>(res.status)) +
                        ")");
        }
    }
    // The audit reads are host-side bookkeeping, not simulated work.
    for (unsigned s = 0; s < testbed_->shardCount(); s++)
        testbed_->serverHeap(s).drainCost();
}

void
FaultRunner::auditCache()
{
    if (!config_.testbed.cacheEnabled || testbed_->deviceCount() == 0)
        return;
    std::uint64_t persisted = 0, pending = 0, stale = 0;
    for (unsigned s = 0; s < testbed_->shardCount(); s++)
        auditCacheOf(s, &persisted, &pending, &stale);
    report_.setCounter("cache-persisted", persisted);
    report_.setCounter("cache-pending", pending);
    report_.setCounter("cache-stale", stale);
}

void
FaultRunner::auditCacheOf(unsigned shard, std::uint64_t *persisted,
                          std::uint64_t *pending, std::uint64_t *stale)
{
    // Each shard's caching device is the tail of its own chain.
    auto &cache =
        testbed_->shardDevice(shard,
                              testbed_->shardDeviceCount(shard) - 1)
            .cache();
    for (const auto &entry : cache.dump()) {
        switch (entry.state) {
          case pmnetdev::CacheState::Pending: (*pending)++; break;
          case pmnetdev::CacheState::Stale: (*stale)++; break;
          case pmnetdev::CacheState::Invalid: break;
          case pmnetdev::CacheState::Persisted: {
            (*persisted)++;
            // A Persisted entry claims to hold the server-committed
            // value; anything older served from here is P3's stale
            // read. Foreign keys (none expected) are skipped.
            int session = 0, key_index = 0;
            if (entry.key.size() > 3 && entry.key[0] == 'f') {
                std::size_t colon = entry.key.find(":k");
                if (colon != std::string::npos) {
                    session = std::stoi(entry.key.substr(1, colon - 1));
                    key_index = std::stoi(entry.key.substr(colon + 2));
                } else {
                    break;
                }
            } else {
                break;
            }
            int last = key_index +
                       config_.keysPerSession *
                           ((config_.updatesPerClient - 1 - key_index) /
                            config_.keysPerSession);
            std::string expected = valueName(session, last);
            std::string got(entry.value.begin(), entry.value.end());
            if (got != expected)
                report_.addViolation(
                    "P3-staleness",
                    "cache entry " + entry.key +
                        " Persisted with \"" + got + "\", committed is \"" +
                        expected + "\"");
            break;
          }
        }
    }
}

void
FaultRunner::auditReadsEndToEnd()
{
    Tick base_tick = testbed_->now();
    int window = config_.keysPerSession < config_.updatesPerClient
                     ? config_.keysPerSession
                     : config_.updatesPerClient;
    std::size_t pending = 0;
    // Read completions fire on client partitions: the shared tally is
    // atomic and the report takes the runner's mutex.
    std::atomic<std::size_t> completed{0};
    auto *done = &completed;
    for (std::size_t c = 0; c < testbed_->clientCount(); c++) {
        int session = static_cast<int>(c) + 1;
        for (int j = 0; j < window; j++) {
            int last = j + config_.keysPerSession *
                               ((config_.updatesPerClient - 1 - j) /
                                config_.keysPerSession);
            std::string key = keyName(session, j);
            std::string expected = valueName(session, last);
            Tick at = base_tick + microseconds(10) *
                                      static_cast<TickDelta>(pending + 1);
            pending++;
            testbed_->clientHost(c).simulator().scheduleAt(
                at, [this, c, key, expected, done] {
                    apps::Command cmd{{"GET", key}};
                    testbed_->clientLib(c).bypass(
                        apps::encodeCommand(cmd), hashKey(key),
                        [this, key, expected, done](const Bytes &wire) {
                            done->fetch_add(1,
                                            std::memory_order_relaxed);
                            auto resp = apps::decodeResponse(wire);
                            if (!resp ||
                                resp->status != apps::RespStatus::Ok ||
                                resp->value != expected) {
                                std::lock_guard<std::mutex> lock(
                                    reportMutex_);
                                report_.addViolation(
                                    "P3-staleness",
                                    "read of " + key + " returned \"" +
                                        (resp
                                             ? resp->value
                                             : std::string("<garbled>")) +
                                        "\", committed is \"" + expected +
                                        "\"");
                            }
                        });
                });
        }
    }
    int rounds = 0;
    Tick target = testbed_->now();
    while (rounds < config_.maxDrainRounds &&
           (completed.load() < pending || outstandingTotal() > 0)) {
        target += config_.drainWindow;
        testbed_->runUntil(target);
        rounds++;
    }
    if (completed.load() < pending)
        report_.addViolation("P3-staleness",
                             "read audit: " +
                                 std::to_string(pending -
                                                completed.load()) +
                                 " read(s) never completed");
    report_.setCounter("reads-audited", completed.load());
}

void
FaultRunner::collectCounters()
{
    // Every link is reachable from an endpoint we know (the switch in
    // the middle only connects to clients, devices and the server).
    std::set<net::Link *> links;
    std::uint64_t losses = 0, drops = 0;
    std::uint64_t corruptions = 0, duplicates = 0, reorders = 0;
    auto add = [&](net::Node &node) {
        for (int p = 0; p < node.portCount(); p++) {
            net::Link *link = node.linkAt(p);
            if (link != nullptr && links.insert(link).second) {
                losses += link->losses();
                drops += link->drops();
                corruptions += link->corruptions();
                duplicates += link->duplicates();
                reorders += link->reorders();
            }
        }
    };
    for (unsigned s = 0; s < testbed_->shardCount(); s++)
        add(testbed_->serverHost(s));
    for (std::size_t i = 0; i < testbed_->deviceCount(); i++)
        add(testbed_->device(i));
    for (std::size_t c = 0; c < testbed_->clientCount(); c++)
        add(testbed_->clientHost(c));
    report_.setCounter("link-losses", losses);
    report_.setCounter("link-drops", drops);
    report_.setCounter("link-corruptions", corruptions);
    report_.setCounter("link-duplicates", duplicates);
    report_.setCounter("link-reorders", reorders);

    std::uint64_t acked = 0, applied = 0;
    std::uint64_t timeouts = 0, resent = 0, by_pmnet = 0, by_server = 0;
    const obs::MetricRegistry &metrics = testbed_->metrics();
    for (std::size_t c = 0; c < testbed_->clientCount(); c++) {
        acked += sessions_[c].acked.size();
        applied += sessions_[c].appliedTotal();
        std::string cp = testbed_->clientPrefix(c);
        timeouts += metrics.value(cp + ".timeouts");
        resent += metrics.value(cp + ".packetsResent");
        by_pmnet += metrics.value(cp + ".completedByPmnetAck");
        by_server += metrics.value(cp + ".completedByServerAck");
    }
    report_.setCounter("acked-total", acked);
    report_.setCounter("applied-total", applied);
    report_.setCounter("client-timeouts", timeouts);
    report_.setCounter("client-resends", resent);
    report_.setCounter("client-completed-pmnet", by_pmnet);
    report_.setCounter("client-completed-server", by_server);

    std::uint64_t logged = 0, reacked = 0, retrans = 0, replayed = 0;
    std::uint64_t reforwarded = 0;
    std::uint64_t resilver_sent = 0, resilver_logged = 0;
    for (std::size_t i = 0; i < testbed_->deviceCount(); i++) {
        std::string dp = testbed_->devicePrefix(i);
        logged += metrics.value(dp + ".updatesLogged");
        reacked += metrics.value(dp + ".updatesReAcked");
        retrans += metrics.value(dp + ".retransServed");
        replayed += metrics.value(dp + ".recoveryResent");
        reforwarded += metrics.value(dp + ".reforwarded");
        resilver_sent += metrics.value(dp + ".resilverPushesSent");
        resilver_logged += metrics.value(dp + ".resilverLogged");
    }
    report_.setCounter("device-logged", logged);
    report_.setCounter("device-reacked", reacked);
    report_.setCounter("device-retrans-served", retrans);
    report_.setCounter("device-recovery-resent", replayed);
    report_.setCounter("device-reforwarded", reforwarded);
    if (testbed_->shardMap() != nullptr) {
        report_.setCounter("resilver-pushes", resilver_sent);
        report_.setCounter("resilver-logged", resilver_logged);
        report_.setCounter("resilver-streams",
                           repairCoord_->streamsStarted());
        report_.setCounter("repairs-completed",
                           repairCoord_->repairsCompleted());
    }

    std::uint64_t srv_applied = 0, srv_dups = 0, srv_makeup = 0;
    std::uint64_t srv_recoveries = 0, srv_acks = 0;
    for (unsigned s = 0; s < testbed_->shardCount(); s++) {
        std::string sp = testbed_->serverPrefix(s);
        srv_applied += metrics.value(sp + ".updatesApplied");
        srv_dups += metrics.value(sp + ".duplicatesDropped");
        srv_makeup += metrics.value(sp + ".makeupAcks");
        srv_recoveries += metrics.value(sp + ".recoveries");
        srv_acks += metrics.value(sp + ".acksSent");
    }
    report_.setCounter("server-applied", srv_applied);
    report_.setCounter("server-duplicates", srv_dups);
    report_.setCounter("server-makeup-acks", srv_makeup);
    report_.setCounter("server-recoveries", srv_recoveries);
    report_.setCounter("server-acks", srv_acks);
}

const InvariantReport &
FaultRunner::run(const FaultPlan &plan)
{
    if (ran_)
        return report_;
    ran_ = true;
    report_ = InvariantReport(
        "fault-plan:" + plan.name + ":seed" +
        std::to_string(config_.testbed.seed));
    sessions_.assign(testbed_->clientCount(), SessionTrack{});
    for (SessionTrack &track : sessions_)
        track.appliedByShard.resize(testbed_->shardCount());

    testbed_->setHandlerTap([this](std::uint16_t, bool is_update,
                                   const apps::Command &cmd) {
        if (!is_update || cmd.args.size() < 3 || cmd.verb() != "SET")
            return;
        int session = 0, op = 0;
        if (!parseValue(cmd.args[2], &session, &op))
            return;
        std::size_t idx = static_cast<std::size_t>(session) - 1;
        if (idx < sessions_.size()) {
            unsigned shard = shardOfKey(cmd.args[1]);
            std::lock_guard<std::mutex> lock(tapMutex_);
            sessions_[idx].appliedByShard[shard].push_back(op);
        }
    });

    for (std::size_t c = 0; c < testbed_->clientCount(); c++)
        testbed_->clientLib(c).startSession();
    for (const FaultAction &action : plan.actions)
        scheduleAction(action);
    issueUpdates();

    // Run at least to the end of the plan (a power cut scheduled past
    // the last completion must still happen), then drain. The run is
    // chopped into drain-sized windows with a repair-coordinator poll
    // between each, so a repair beginning mid-plan starts its resilver
    // stream while the chain still holds live entries — not after the
    // dust has settled.
    TickDelta horizon = 0;
    for (const FaultAction &action : plan.actions) {
        TickDelta end = action.at + action.duration;
        horizon = end > horizon ? end : horizon;
    }
    Tick plan_end = testbed_->now() + horizon;
    for (Tick target = testbed_->now(); target < plan_end;) {
        target += config_.drainWindow;
        if (target > plan_end)
            target = plan_end;
        testbed_->runUntil(target);
        repairCoord_->poll();
    }
    drain("updates");

    checkDurabilityAndOrder();
    auditStore();
    auditCache();
    if (config_.auditReads)
        auditReadsEndToEnd();
    collectCounters();
    return report_;
}

} // namespace pmnet::fault
