#include "fault/invariants.h"

namespace pmnet::fault {

std::string
InvariantReport::text() const
{
    std::string out;
    out += "scenario: " + scenario_ + "\n";
    for (const auto &[name, value] : counters_)
        out += "counter " + name + " = " + std::to_string(value) + "\n";
    if (violations_.empty()) {
        out += "verdict: clean\n";
    } else {
        out += "verdict: " + std::to_string(violations_.size()) +
               " violation(s)\n";
        for (const Violation &v : violations_)
            out += "violation [" + v.invariant + "] " + v.detail + "\n";
    }
    return out;
}

} // namespace pmnet::fault
