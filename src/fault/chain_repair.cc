#include "fault/chain_repair.h"

#include "common/logging.h"

namespace pmnet::fault {

void
ChainRepairCoordinator::beginRepair(unsigned shard, std::size_t target)
{
    if (bed_.shardMap() == nullptr)
        fatal("ChainRepairCoordinator: testbed has no shard map");
    if (target >= bed_.shardDeviceCount(shard))
        fatal("ChainRepairCoordinator: target %zu out of range", target);
    for (const Repair &repair : repairs_) {
        if (repair.shard == shard && repair.target == target)
            return; // already registered (idempotent)
    }
    repairs_.push_back(Repair{shard, target});
}

bool
ChainRepairCoordinator::verified(const Repair &repair) const
{
    const pm::PmLogStore &target_log =
        bed_.shardDevice(repair.shard, repair.target).logStore();
    bool complete = true;
    for (std::size_t d = 0; d < bed_.shardDeviceCount(repair.shard);
         d++) {
        if (d == repair.target)
            continue;
        bed_.shardDevice(repair.shard, d)
            .logStore()
            .forEach([&](const pm::LogEntry &entry) {
                if (target_log.lookup(entry.hashVal) == nullptr)
                    complete = false;
            });
    }
    return complete;
}

bool
ChainRepairCoordinator::poll()
{
    for (std::size_t i = 0; i < repairs_.size();) {
        const Repair &repair = repairs_[i];

        // Step 1: the whole chain must be powered — a repair cannot
        // make progress into (or out of) a dark device. Additional
        // crashes mid-repair land here until the power comes back.
        bool all_up = true;
        for (std::size_t d = 0;
             d < bed_.shardDeviceCount(repair.shard); d++) {
            if (!bed_.shardDevice(repair.shard, d).isUp())
                all_up = false;
        }
        if (!all_up) {
            i++;
            continue;
        }

        // Step 2/3: while a stream is pushing, wait; once quiet,
        // verify and either finish or restart the stream. With no
        // surviving peer (replication degree 1) there is nothing to
        // copy from — the entries died with the old unit, which is
        // exactly why single-replica chains are repaired by power
        // restore, not replacement.
        pmnetdev::PmnetDevice *source = nullptr;
        for (std::size_t d = 0;
             d < bed_.shardDeviceCount(repair.shard); d++) {
            if (d != repair.target) {
                source = &bed_.shardDevice(repair.shard, d);
                break;
            }
        }

        bool streaming = false;
        for (std::size_t d = 0;
             d < bed_.shardDeviceCount(repair.shard); d++) {
            if (d != repair.target &&
                bed_.shardDevice(repair.shard, d).resilverActive())
                streaming = true;
        }
        if (streaming) {
            i++;
            continue;
        }

        if (source == nullptr || verified(repair)) {
            bed_.shardMap()->setHealth(repair.shard,
                                       pmnet::ShardMap::Health::Healthy);
            repairsCompleted_++;
            repairs_.erase(repairs_.begin() +
                           static_cast<std::ptrdiff_t>(i));
            continue;
        }

        source->resilverTo(
            bed_.shardDevice(repair.shard, repair.target).id());
        streamsStarted_++;
        i++;
    }
    return repairs_.empty();
}

} // namespace pmnet::fault
