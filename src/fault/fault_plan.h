/**
 * @file
 * Declarative fault plans for the full testbed, plus the runner that
 * executes them and checks the three PMNet safety properties
 * (DESIGN.md section 10).
 *
 * A plan is a list of timed actions — loss bursts, deterministic
 * dropNext sequences, server/device power cuts, device replacement in
 * a replication chain — injected into a running testbed::System while
 * scripted open-loop clients stream updates with known keys and
 * per-step-unique values. After the workload drains, the checker
 * asserts:
 *
 *  P1 durability: every client-acked update survives (the server's
 *     persisted watermark covers it, it was applied exactly once, and
 *     the final store content equals the last update per key);
 *  P2 ordering: the server applied each session's updates in exactly
 *     issue order, gap-free (recorded via Testbed's handler tap);
 *  P3 staleness: post-recovery reads — both the in-switch cache's
 *     Persisted entries and end-to-end bypass GETs — return exactly
 *     the committed values, never anything older.
 *
 * Everything is driven by the discrete-event simulator, so a plan
 * with a fixed seed is bit-for-bit reproducible: the determinism
 * regression test re-runs a plan and compares report text and link
 * loss/drop counters byte for byte.
 */

#ifndef PMNET_FAULT_FAULT_PLAN_H
#define PMNET_FAULT_FAULT_PLAN_H

#include <memory>
#include <mutex>

#include "fault/chain_repair.h"
#include "fault/invariants.h"
#include "testbed/system.h"

namespace pmnet::fault {

/** One timed fault injection. */
struct FaultAction
{
    enum class Kind {
        /** Raise a link's random loss rate for `duration`. */
        LossBurst,
        /** Deterministically drop the next `count` packets. */
        DropNext,
        /** Power-cut the server host; restore after `duration`. */
        ServerPowerCut,
        /** Power-cut PMNet device `index`; restore after `duration`. */
        DevicePowerCut,
        /** Permanently replace device `index` (empty log comes back). */
        DeviceReplace,
        /**
         * Sharded-fabric chain repair (requires shards > 1): cut
         * power to device `index` and mark its shard Failed; after
         * `duration`, swap the unit (replace == true; empty log) or
         * restore power, mark the shard Resilvering, and hand it to
         * the ChainRepairCoordinator, which re-silvers the log from
         * the surviving peers and returns the shard to Healthy.
         */
        ChainRepair,
        /**
         * Install `impair` on the selected link's direction(s) at
         * `at`; restore the clean channel after `duration` (an
         * impairment with duration 0 lasts to the end of the run —
         * note the post-drain audits then run over the impaired
         * channel too).
         */
        Impair,
    };

    /** Which link a LossBurst/DropNext applies to. */
    enum class Where {
        ServerLink,       ///< the server host's (only) link
        ClientLink,       ///< client `index`'s (only) link
        DeviceClientSide, ///< device `index`'s client-facing link
    };

    Kind kind = Kind::LossBurst;
    /** Injection time, relative to run start. */
    TickDelta at = 0;
    /** Outage/burst length (power cuts, loss bursts). */
    TickDelta duration = 0;
    /** LossBurst: loss probability while the burst lasts. */
    double lossRate = 0.0;
    /** DropNext: packets to drop. */
    int count = 0;
    /** DropNext: drop the server-bound direction (else client-bound). */
    bool towardServer = false;
    /** Device or client index, per Where/Kind. */
    int index = 0;
    Where where = Where::ServerLink;
    /** ChainRepair: swap the unit (empty log) vs. restore power. */
    bool replace = true;

    /** Impair: which direction(s) of the link get the channel. */
    enum class Dir {
        TowardServer, ///< the direction carrying requests upstream
        TowardClient, ///< the direction carrying acks/responses back
        Both,
    };

    /** Impair only (appended so older aggregate initializers keep
     *  their meaning): direction selector and the channel itself. */
    Dir dir = Dir::Both;
    net::Impairment impair;
};

/** A named, ordered fault schedule. */
struct FaultPlan
{
    std::string name;
    std::vector<FaultAction> actions;
};

/** Workload and checking parameters of one fault run. */
struct FaultRunConfig
{
    /**
     * Base testbed configuration (mode, replication, cache, seed...).
     * The runner forces serverKind = CommandStore and an empty
     * pre-population; drivers are never started — the runner issues
     * its own scripted updates.
     */
    testbed::TestbedConfig testbed;

    /** Updates each client issues (seq numbers 1..updatesPerClient). */
    int updatesPerClient = 40;
    /** Keys per session; update i targets key i % keysPerSession. */
    int keysPerSession = 8;
    /** Gap between successive updates of one client. */
    TickDelta issueGap = microseconds(30);
    /** Simulated time per drain round. */
    TickDelta drainWindow = milliseconds(2);
    /** Max drain rounds before declaring a liveness violation. */
    int maxDrainRounds = 400;
    /** Issue end-to-end bypass GETs post-drain (the P3 read audit). */
    bool auditReads = true;
};

/**
 * Owns a testbed, executes one fault plan against a scripted update
 * workload, and checks the three safety properties. Construct, call
 * run() once, then inspect the report (and the testbed's stats).
 */
class FaultRunner
{
  public:
    explicit FaultRunner(FaultRunConfig config);
    ~FaultRunner();

    FaultRunner(const FaultRunner &) = delete;
    FaultRunner &operator=(const FaultRunner &) = delete;

    /** Execute @p plan to completion and return the checked report. */
    const InvariantReport &run(const FaultPlan &plan);

    /** The system under test (valid for the runner's lifetime). */
    testbed::Testbed &testbed() { return *testbed_; }

    /** The repair coordinator (valid for the runner's lifetime). */
    ChainRepairCoordinator &repairCoordinator() { return *repairCoord_; }

    const InvariantReport &report() const { return report_; }

  private:
    struct SessionTrack;

    void scheduleAction(const FaultAction &action);
    net::Link &resolveLink(const FaultAction &action);
    /** The link endpoint transmitting in the given direction. */
    net::Node &transmitEndpoint(const FaultAction &action,
                                net::Link &link, bool toward_server);
    void issueUpdates();
    void drain(const char *phase);
    std::size_t outstandingTotal() const;
    /** Owning shard of a scripted key (0 without a shard map). */
    unsigned shardOfKey(const std::string &key) const;
    void checkDurabilityAndOrder();
    void auditStore();
    void auditCache();
    void auditCacheOf(unsigned shard, std::uint64_t *persisted,
                      std::uint64_t *pending, std::uint64_t *stale);
    void auditReadsEndToEnd();
    void collectCounters();

    FaultRunConfig config_;
    std::unique_ptr<testbed::Testbed> testbed_;
    std::unique_ptr<ChainRepairCoordinator> repairCoord_;
    InvariantReport report_;
    /**
     * Guards report_ inside simulation callbacks: with simThreads >= 1
     * the read-audit completions fire on client partitions, which run
     * on different workers. Checker phases that run between windows
     * (coordinator only) need no lock. Violation *order* across
     * partitions is scheduling-dependent, so cross-thread determinism
     * comparisons must use clean plans (count + counters are exact
     * either way).
     */
    std::mutex reportMutex_;
    /**
     * Guards the handler-tap bookkeeping: with shards > 1 one
     * session's updates apply on several server partitions, which can
     * run on different workers. Per-shard apply order is preserved
     * (each shard's taps are sequential on its own partition).
     */
    std::mutex tapMutex_;
    std::vector<SessionTrack> sessions_;
    bool ran_ = false;
};

} // namespace pmnet::fault

#endif // PMNET_FAULT_FAULT_PLAN_H
