/**
 * @file
 * Adversarial link-condition scenarios (DESIGN.md section 15).
 *
 * A Scenario is one row of a declarative table: a name, a set of
 * per-link impairment specs (net::Impairment applied to chosen
 * directions of chosen testbed links), optional mid-run power-cut
 * actions, and workload knobs. Rows parse from a pipe-separated text
 * grammar:
 *
 *   name | linkspec (';' linkspec)* | extras
 *
 *   linkspec := target impairment-tokens
 *   target   := ( server | clientN | deviceN | all )[ '>' | '<' ]
 *               '>' impairs only the server-bound direction,
 *               '<' only the client-bound one, no suffix both;
 *               `all` expands to the server link and every client
 *               link when the plan is built.
 *   impairment-tokens := the net::parseImpairment grammar
 *                        (delay/jitter/dup/corrupt/reorder/rate/
 *                        loss/ge)
 *   extras   := ( crash (server|deviceN)@AT/DUR | updates N
 *               | clients N | keys N | repl N | nocache
 *               | at DURATION | for DURATION )*
 *
 * Executing a scenario builds a FaultPlan of Impair (+ power-cut)
 * actions and hands it to the existing FaultRunner, so every row is
 * swept against the P1–P3 invariant checker, and — everything being
 * driven by the links' deterministic RNGs — a row's InvariantReport
 * text is byte-identical across simThreads 0/1/N.
 */

#ifndef PMNET_FAULT_SCENARIO_H
#define PMNET_FAULT_SCENARIO_H

#include "fault/fault_plan.h"

namespace pmnet::fault {

/** One impairment attachment: which link, which way, what channel. */
struct ScenarioLink
{
    FaultAction::Where where = FaultAction::Where::ServerLink;
    /** Client or device index, per `where`. */
    int index = 0;
    FaultAction::Dir dir = FaultAction::Dir::Both;
    net::Impairment impair;
    /** True for `all`: expands over server + client links. */
    bool allLinks = false;
};

/** One parsed scenario-table row. */
struct Scenario
{
    std::string name;
    /** The row text it parsed from (for listings and docs). */
    std::string spec;
    std::vector<ScenarioLink> links;
    /** Mid-scenario power cuts (ServerPowerCut / DevicePowerCut). */
    std::vector<FaultAction> crashes;
    /** When the impairments switch on, relative to run start. */
    TickDelta impairAt = 0;
    /**
     * How long they stay on. The default outlasts the whole scripted
     * issue phase (updates x gap + retries) but clears before the
     * post-drain audits, so reads audit the recovered system over a
     * clean channel.
     */
    TickDelta impairFor = microseconds(1500);
    int updatesPerClient = 40;
    int clients = 2;
    int keysPerSession = 8;
    unsigned replication = 1;
    bool cache = true;
};

/** Parse one table row; false + @p error on malformed input. */
bool parseScenario(const std::string &row, Scenario *out,
                   std::string *error);

/** The built-in adversarial scenario table (>= 10 rows, covering
 *  delay/jitter, reordering, duplication, corruption-rate, uniform
 *  and Gilbert–Elliott burst loss, asymmetric bandwidth, and
 *  impairment-under-crash combinations). */
const std::vector<Scenario> &builtinScenarios();

/** Find a built-in scenario by name; null when absent. */
const Scenario *findScenario(const std::string &name);

/** Execution knobs orthogonal to the scenario row itself. */
struct ScenarioRunOptions
{
    kv::KvKind kind = kv::KvKind::Hashmap;
    unsigned simThreads = 0;
    std::uint64_t seed = 42;
    bool auditReads = true;
};

/** The FaultRunConfig a scenario runs under (workload knobs from the
 *  row, backend/threads/seed from @p opts). */
FaultRunConfig scenarioRunConfig(const Scenario &scenario,
                                 const ScenarioRunOptions &opts);

/** Lower a scenario to the FaultPlan the runner executes: one Impair
 *  action per (expanded) link spec plus the crash actions. */
FaultPlan scenarioPlan(const Scenario &scenario);

/** Run one scenario to completion and return the checked report. */
InvariantReport runScenario(const Scenario &scenario,
                            const ScenarioRunOptions &opts = {});

} // namespace pmnet::fault

#endif // PMNET_FAULT_SCENARIO_H
