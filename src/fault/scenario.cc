#include "fault/scenario.h"

#include <cctype>
#include <sstream>

#include "common/logging.h"

namespace pmnet::fault {

namespace {

std::string
trim(const std::string &text)
{
    std::size_t begin = 0, end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        begin++;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        end--;
    return text.substr(begin, end - begin);
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); i++) {
        if (i == text.size() || text[i] == sep) {
            parts.push_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return parts;
}

bool
parseIndex(const std::string &digits, int *out)
{
    if (digits.empty())
        return false;
    for (char c : digits) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    }
    *out = std::stoi(digits);
    return true;
}

/**
 * Parse a linkspec target: server | clientN | deviceN | all with an
 * optional trailing direction suffix ('>' server-bound only, '<'
 * client-bound only).
 */
bool
parseTarget(std::string word, ScenarioLink *out)
{
    out->dir = FaultAction::Dir::Both;
    if (!word.empty() && word.back() == '>') {
        out->dir = FaultAction::Dir::TowardServer;
        word.pop_back();
    } else if (!word.empty() && word.back() == '<') {
        out->dir = FaultAction::Dir::TowardClient;
        word.pop_back();
    }
    if (word == "server") {
        out->where = FaultAction::Where::ServerLink;
        out->index = 0;
        return true;
    }
    if (word == "all") {
        out->allLinks = true;
        return true;
    }
    if (word.rfind("client", 0) == 0) {
        out->where = FaultAction::Where::ClientLink;
        return parseIndex(word.substr(6), &out->index);
    }
    if (word.rfind("device", 0) == 0) {
        out->where = FaultAction::Where::DeviceClientSide;
        return parseIndex(word.substr(6), &out->index);
    }
    return false;
}

/** Parse "server@400us/500us" / "device1@450us/300us". */
bool
parseCrash(const std::string &word, FaultAction *out)
{
    std::size_t at_pos = word.find('@');
    std::size_t slash = word.find('/', at_pos == std::string::npos
                                             ? 0
                                             : at_pos);
    if (at_pos == std::string::npos || slash == std::string::npos)
        return false;
    std::string target = word.substr(0, at_pos);
    if (target == "server") {
        out->kind = FaultAction::Kind::ServerPowerCut;
        out->index = 0;
    } else if (target.rfind("device", 0) == 0) {
        out->kind = FaultAction::Kind::DevicePowerCut;
        if (!parseIndex(target.substr(6), &out->index))
            return false;
    } else {
        return false;
    }
    return net::parseDuration(
               word.substr(at_pos + 1, slash - at_pos - 1), &out->at) &&
           net::parseDuration(word.substr(slash + 1), &out->duration);
}

/** The built-in adversarial table. Each row is one CI scenario; keep
 *  names stable — bench_diff keys fig_impairments rows by them. */
const char *const kScenarioTable[] = {
    // Control row: the clean channel, same workload.
    "clean-baseline | |",
    // Fixed extra latency plus uniform jitter on the server link.
    "delay-jitter | server delay 3us jitter 2us |",
    // Heavy jitter alone on the chain-head device link: enough to
    // reorder acks relative to each other without explicit holds.
    "jitter-storm | device0 jitter 6us |",
    // Explicit reordering window on server-bound traffic: one in four
    // packets is held 40us, so later sequence numbers overtake it.
    "reorder-window | server> reorder 25% 40us |",
    // Go-Back-N-style duplication of server-bound updates.
    "dup-updates | device0> dup 10% |",
    // Duplicate ack/response storm toward the clients.
    "dup-ack-storm | device0< dup 20% |",
    // Sustained rate-based corruption into the device: every damaged
    // packet must die on the device's CRC check (bypassBadHash).
    "corrupt-to-device | device0> corrupt 3% |",
    // Same fire aimed at the server's CRC check (hashRejected).
    "corrupt-to-server | server> corrupt 3% |",
    // Bursty Gilbert-Elliott loss: 5% entry to a bad state that drops
    // 80% and lasts ~4 packets - loss arrives in clumps, exactly what
    // uniform loss testing misses.
    "ge-burst-loss | server> ge 5% 25% 80% |",
    // The netem classic, spread over every client link and the server
    // link at once.
    "uniform-loss | all loss 3% |",
    // Asymmetric bandwidth: the return path throttled well below the
    // request path, so acks queue behind each other.
    "asym-bandwidth | server< rate 1.5 |",
    // Everything at once, on three different links.
    "nightmare-mix | server delay 2us jitter 3us dup 5% corrupt 2%; "
    "client1> reorder 10% 25us; device0> ge 1% 25% 70% |",
    // Corruption fire while the server power-cycles mid-run: recovery
    // replay itself must survive the corrupting channel.
    "corrupt-under-crash | device0> corrupt 2% | "
    "crash server@500us/400us",
    // Burst loss while the chain head power-cycles in a 2-deep
    // replication chain.
    "burst-loss-device-cut | server> ge 5% 25% 80% | repl 2 "
    "crash device0@450us/350us",
};

std::vector<Scenario>
parseBuiltins()
{
    std::vector<Scenario> table;
    for (const char *row : kScenarioTable) {
        Scenario scenario;
        std::string error;
        if (!parseScenario(row, &scenario, &error))
            fatal("builtin scenario table: %s", error.c_str());
        table.push_back(std::move(scenario));
    }
    return table;
}

} // namespace

bool
parseScenario(const std::string &row, Scenario *out, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error != nullptr)
            *error = "scenario '" + row + "': " + why;
        return false;
    };

    std::vector<std::string> fields = splitOn(row, '|');
    if (fields.size() < 2 || fields.size() > 3)
        return fail("expected 'name | linkspecs | extras'");

    Scenario scenario;
    scenario.spec = trim(row);
    scenario.name = trim(fields[0]);
    if (scenario.name.empty() ||
        scenario.name.find(' ') != std::string::npos)
        return fail("bad name");

    for (const std::string &piece : splitOn(fields[1], ';')) {
        std::string spec = trim(piece);
        if (spec.empty())
            continue;
        std::istringstream stream(spec);
        std::string target;
        stream >> target;
        ScenarioLink link;
        if (!parseTarget(target, &link))
            return fail("bad link target '" + target + "'");
        std::string tokens;
        std::getline(stream, tokens);
        std::string imp_error;
        if (!net::parseImpairment(tokens, &link.impair, &imp_error))
            return fail(imp_error);
        if (!link.impair.active())
            return fail("link target '" + target +
                        "' has no impairment tokens");
        scenario.links.push_back(std::move(link));
    }

    if (fields.size() == 3) {
        std::istringstream stream(fields[2]);
        std::string word;
        auto nextWord = [&](const char *knob) {
            if (!(stream >> word)) {
                fail(std::string(knob) + ": missing argument");
                return false;
            }
            return true;
        };
        auto nextInt = [&](const char *knob, int *slot) {
            if (!nextWord(knob))
                return false;
            if (!parseIndex(word, slot) || *slot <= 0)
                return static_cast<bool>(
                    fail(std::string(knob) + ": bad count '" + word +
                         "'"));
            return true;
        };
        while (stream >> word) {
            if (word == "crash") {
                if (!nextWord("crash"))
                    return false;
                FaultAction crash;
                if (!parseCrash(word, &crash))
                    return fail("bad crash spec '" + word + "'");
                scenario.crashes.push_back(crash);
            } else if (word == "updates") {
                if (!nextInt("updates", &scenario.updatesPerClient))
                    return false;
            } else if (word == "clients") {
                if (!nextInt("clients", &scenario.clients))
                    return false;
            } else if (word == "keys") {
                if (!nextInt("keys", &scenario.keysPerSession))
                    return false;
            } else if (word == "repl") {
                int repl = 0;
                if (!nextInt("repl", &repl))
                    return false;
                scenario.replication = static_cast<unsigned>(repl);
            } else if (word == "nocache") {
                scenario.cache = false;
            } else if (word == "at") {
                if (!nextWord("at") ||
                    !net::parseDuration(word, &scenario.impairAt))
                    return fail("at: bad duration");
            } else if (word == "for") {
                if (!nextWord("for") ||
                    !net::parseDuration(word, &scenario.impairFor))
                    return fail("for: bad duration");
            } else {
                return fail("unknown extra '" + word + "'");
            }
        }
    }

    for (const ScenarioLink &link : scenario.links) {
        if (link.where == FaultAction::Where::ClientLink &&
            link.index >= scenario.clients)
            return fail("client index out of range");
        if (link.where == FaultAction::Where::DeviceClientSide &&
            static_cast<unsigned>(link.index) >= scenario.replication)
            return fail("device index out of range");
    }

    *out = std::move(scenario);
    return true;
}

const std::vector<Scenario> &
builtinScenarios()
{
    static const std::vector<Scenario> table = parseBuiltins();
    return table;
}

const Scenario *
findScenario(const std::string &name)
{
    for (const Scenario &scenario : builtinScenarios()) {
        if (scenario.name == name)
            return &scenario;
    }
    return nullptr;
}

FaultRunConfig
scenarioRunConfig(const Scenario &scenario,
                  const ScenarioRunOptions &opts)
{
    FaultRunConfig config;
    config.testbed.mode = testbed::SystemMode::PmnetSwitch;
    config.testbed.clientCount = scenario.clients;
    config.testbed.replicationDegree = scenario.replication;
    config.testbed.cacheEnabled = scenario.cache;
    config.testbed.storeKind = opts.kind;
    config.testbed.seed = opts.seed;
    config.testbed.simThreads = opts.simThreads;
    config.updatesPerClient = scenario.updatesPerClient;
    config.keysPerSession = scenario.keysPerSession;
    config.auditReads = opts.auditReads;
    // Adversarial channels can swallow the *tail* of a session's
    // stream after the PMNet-ACK already completed the client — a
    // hole the server's gap detector cannot see (it needs a later
    // packet to notice the gap). The device's stale-log re-forward
    // timer (off in the default config) closes that window, so every
    // scenario runs with it armed.
    config.testbed.device.reforwardAge = microseconds(400);
    return config;
}

FaultPlan
scenarioPlan(const Scenario &scenario)
{
    FaultPlan plan;
    plan.name = scenario.name;
    auto push = [&](const ScenarioLink &link,
                    FaultAction::Where where, int index) {
        FaultAction action;
        action.kind = FaultAction::Kind::Impair;
        action.at = scenario.impairAt;
        action.duration = scenario.impairFor;
        action.where = where;
        action.index = index;
        action.dir = link.dir;
        action.impair = link.impair;
        plan.actions.push_back(action);
    };
    for (const ScenarioLink &link : scenario.links) {
        if (link.allLinks) {
            push(link, FaultAction::Where::ServerLink, 0);
            for (int c = 0; c < scenario.clients; c++)
                push(link, FaultAction::Where::ClientLink, c);
        } else {
            push(link, link.where, link.index);
        }
    }
    for (const FaultAction &crash : scenario.crashes)
        plan.actions.push_back(crash);
    return plan;
}

InvariantReport
runScenario(const Scenario &scenario, const ScenarioRunOptions &opts)
{
    FaultRunner runner(scenarioRunConfig(scenario, opts));
    return runner.run(scenarioPlan(scenario));
}

} // namespace pmnet::fault
