/**
 * @file
 * Invariant report shared by the crash matrix and the fault-plan
 * runner (DESIGN.md section 10).
 *
 * A report accumulates the checker's verdicts for one scenario:
 * violations of the three PMNet safety properties —
 *
 *  P1 no client-acked update is lost after recovery,
 *  P2 replay reaches the server in per-session sequence order,
 *  P3 the read cache never serves a stale value post-recovery —
 *
 * plus named counters describing what the scenario exercised (crashes
 * injected, link losses, duplicates dropped, ...). text() renders the
 * whole report in a canonical sorted form, so the determinism
 * regression test can assert byte-identical reports across two runs
 * of the same seeded plan.
 */

#ifndef PMNET_FAULT_INVARIANTS_H
#define PMNET_FAULT_INVARIANTS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pmnet::fault {

/** One failed invariant check. */
struct Violation
{
    /** Which property failed ("P1-durability", "P2-order", ...). */
    std::string invariant;
    /** Human-readable evidence (keys, expected vs observed values). */
    std::string detail;
};

/** Everything the checker concluded about one scenario. */
class InvariantReport
{
  public:
    explicit InvariantReport(std::string scenario_name = {})
        : scenario_(std::move(scenario_name))
    {}

    /** Record a failed check. */
    void
    addViolation(std::string invariant, std::string detail)
    {
        violations_.push_back(
            Violation{std::move(invariant), std::move(detail)});
    }

    /** Set a named counter (overwrites). */
    void
    setCounter(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
    }

    /** Add to a named counter. */
    void
    bumpCounter(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    std::uint64_t
    counter(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    bool clean() const { return violations_.empty(); }

    const std::string &scenario() const { return scenario_; }
    const std::vector<Violation> &violations() const { return violations_; }
    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }

    /**
     * Canonical rendering: scenario line, counters in name order (the
     * map's iteration order), then violations in discovery order.
     * Two deterministic runs must produce byte-identical text.
     */
    std::string text() const;

  private:
    std::string scenario_;
    std::vector<Violation> violations_;
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace pmnet::fault

#endif // PMNET_FAULT_INVARIANTS_H
