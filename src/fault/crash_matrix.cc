#include "fault/crash_matrix.h"

#include <limits>
#include <map>

#include "common/rng.h"
#include "pm/commit_epoch.h"

namespace pmnet::fault {

namespace {

/** One recorded KV operation. */
struct Op
{
    bool isPut = true;
    std::string key;
    std::string value; ///< unique per step, so probes are unambiguous
};

Bytes
toBytes(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

std::string
toString(const Bytes &b)
{
    return std::string(b.begin(), b.end());
}

/**
 * Record the op sequence. Small key universe + put-heavy mix, so the
 * sweep exercises inserts, in-place value updates, erases of present
 * keys and erases of absent keys on every backend.
 */
std::vector<Op>
recordOps(std::uint64_t seed, int op_count, int key_count)
{
    Rng rng(seed);
    std::vector<Op> ops;
    ops.reserve(static_cast<std::size_t>(op_count));
    for (int i = 0; i < op_count; i++) {
        Op op;
        op.key = "k" + std::to_string(rng.nextUInt(
                           static_cast<std::uint64_t>(key_count)));
        op.isPut = rng.nextDouble() < 0.7;
        if (op.isPut)
            op.value = "v" + std::to_string(i) + "-" + op.key;
        ops.push_back(std::move(op));
    }
    return ops;
}

std::vector<Op>
recordOps(const CrashMatrixConfig &config)
{
    return recordOps(config.seed, config.opCount, config.keyCount);
}

/**
 * Choose the crash points: every boundary, or an even spread of
 * max_crashes across the range (--smoke).
 */
std::vector<std::size_t>
spreadCrashPoints(std::size_t boundaries, int max_crashes)
{
    std::vector<std::size_t> points;
    if (max_crashes <= 0 ||
        static_cast<std::size_t>(max_crashes) >= boundaries) {
        for (std::size_t c = 1; c <= boundaries; c++)
            points.push_back(c);
    } else {
        double stride = static_cast<double>(boundaries) /
                        static_cast<double>(max_crashes);
        for (int i = 0; i < max_crashes; i++)
            points.push_back(
                static_cast<std::size_t>(static_cast<double>(i) * stride) +
                1);
    }
    return points;
}

void
applyToStore(kv::KvStore &store, const Op &op)
{
    if (op.isPut)
        store.put(kv::asKey(op.key), toBytes(op.value));
    else
        store.erase(kv::asKey(op.key));
}

void
applyToModel(std::map<std::string, std::string> &model, const Op &op)
{
    if (op.isPut)
        model[op.key] = op.value;
    else
        model.erase(op.key);
}

/**
 * Compare the recovered store's full content against @p model over
 * the whole key universe. Every divergence is a durability/atomicity
 * violation: either an acknowledged (fenced) state was lost, or a
 * partially applied op became visible.
 */
void
checkContent(const kv::KvStore &store,
             const std::map<std::string, std::string> &model,
             int key_count, const std::string &where,
             InvariantReport &report)
{
    for (int k = 0; k < key_count; k++) {
        std::string key = "k" + std::to_string(k);
        std::optional<Bytes> got = store.get(kv::asKey(key));
        auto want = model.find(key);
        if (want == model.end()) {
            if (got)
                report.addViolation(
                    "P1-durability", where + ": key " + key +
                                         " should be absent, found \"" +
                                         toString(*got) + "\"");
        } else if (!got) {
            report.addViolation("P1-durability",
                                where + ": key " + key +
                                    " lost, expected \"" + want->second +
                                    "\"");
        } else if (toString(*got) != want->second) {
            report.addViolation("P1-durability",
                                where + ": key " + key + " expected \"" +
                                    want->second + "\", found \"" +
                                    toString(*got) + "\"");
        }
    }
}

/**
 * Check the persisted element count against the model.
 * @return the lag (model size minus persisted count); |lag| == 1 is
 * the documented count-fence window, anything larger is a violation.
 */
std::int64_t
checkCount(const kv::KvStore &store,
           const std::map<std::string, std::string> &model,
           const std::string &where, InvariantReport &report)
{
    std::int64_t lag = static_cast<std::int64_t>(model.size()) -
                       static_cast<std::int64_t>(store.size());
    if (lag > 1 || lag < -1)
        report.addViolation(
            "P1-durability",
            where + ": persisted count " + std::to_string(store.size()) +
                " drifted from content size " +
                std::to_string(model.size()) +
                " by more than the one-op count-lag window");
    return lag;
}

} // namespace

CrashMatrixResult
runCrashMatrix(const CrashMatrixConfig &config)
{
    CrashMatrixResult result;
    result.report = InvariantReport(
        std::string("crash-matrix:") + kv::kvKindName(config.kind) +
        ":seed" + std::to_string(config.seed));
    InvariantReport &report = result.report;

    std::vector<Op> ops = recordOps(config);

    // Pass 1: count the persist boundaries the recorded sequence
    // crosses (store construction excluded — the sweep targets the
    // operation sequence) and sanity-check the no-crash final state.
    std::map<std::string, std::string> finalModel;
    {
        pm::PmHeap heap(config.heapBytes);
        auto store = kv::makeKvStore(config.kind, heap);
        std::size_t boundaries = 0;
        heap.setPersistBoundaryHook(
            [&boundaries](pm::PersistBoundary) { boundaries++; });
        for (const Op &op : ops) {
            applyToStore(*store, op);
            applyToModel(finalModel, op);
        }
        heap.setPersistBoundaryHook(nullptr);
        result.boundaries = boundaries;
        checkContent(*store, finalModel, config.keyCount, "no-crash run", report);
        checkCount(*store, finalModel, "no-crash run", report);
    }

    std::vector<std::size_t> crashPoints =
        spreadCrashPoints(result.boundaries, config.maxCrashes);

    for (std::size_t crash_at : crashPoints) {
        pm::PmHeap heap(config.heapBytes);
        auto store = kv::makeKvStore(config.kind, heap);
        pm::PmOffset header_off = store->headerOffset();

        std::size_t seen = 0;
        heap.setPersistBoundaryHook([&seen, crash_at](pm::PersistBoundary b) {
            if (++seen == crash_at)
                throw InjectedCrash{b, crash_at};
        });

        std::map<std::string, std::string> model;
        std::size_t j = 0;
        bool crashed = false;
        InjectedCrash crash;
        for (; j < ops.size(); j++) {
            try {
                applyToStore(*store, ops[j]);
            } catch (const InjectedCrash &c) {
                crashed = true;
                crash = c;
                break;
            }
            applyToModel(model, ops[j]);
        }

        if (!crashed) {
            // The boundary stream is a pure function of the sequence;
            // not reaching a counted boundary is a determinism bug.
            report.addViolation(
                "determinism",
                "boundary " + std::to_string(crash_at) +
                    " counted in pass 1 was never reached on replay");
            continue;
        }
        result.crashesInjected++;

        std::string where = "crash at boundary " +
                            std::to_string(crash_at) + " (" +
                            pm::persistBoundaryName(crash.boundary) +
                            ") in op " + std::to_string(j);

        heap.crash(); // discards staged ranges, clears the hook
        store = kv::openKvStore(heap, header_off);

        // Atomicity: the in-flight op either happened entirely or not
        // at all. Which one is decided by probing its key — per-step
        // values are unique, so the probe cannot be fooled by an
        // earlier write of the same key.
        const Op &inflight = ops[j];
        std::optional<Bytes> probe = store->get(kv::asKey(inflight.key));
        bool applied;
        if (inflight.isPut)
            applied = probe && toString(*probe) == inflight.value;
        else
            applied = model.count(inflight.key) != 0 && !probe;
        if (applied)
            applyToModel(model, inflight);

        checkContent(*store, model, config.keyCount, where, report);
        std::int64_t lag = checkCount(*store, model, where, report);
        if (lag != 0)
            result.countLagObserved++;

        // Resume the rest of the sequence on the recovered store; it
        // must converge to exactly the no-crash final state (with the
        // count still within its original lag — bumps are relative).
        for (std::size_t r = j + (applied ? 1 : 0); r < ops.size(); r++) {
            applyToStore(*store, ops[r]);
            applyToModel(model, ops[r]);
        }
        checkContent(*store, finalModel, config.keyCount, where + ", after resume",
                     report);
        checkCount(*store, finalModel, where + ", after resume", report);
        if (model != finalModel)
            report.addViolation("P1-durability",
                                where + ": resumed model diverged from "
                                        "the no-crash reference");
    }

    report.setCounter("boundaries", result.boundaries);
    report.setCounter("crashes-injected", result.crashesInjected);
    report.setCounter("count-lag-observed", result.countLagObserved);
    report.setCounter("ops", static_cast<std::uint64_t>(ops.size()));
    report.setCounter("final-keys", finalModel.size());
    return result;
}

namespace {

/** Which statement the injected crash interrupted. */
enum class GcCrashSite : std::uint8_t
{
    None,  ///< the whole sequence completed (determinism bug)
    Apply, ///< inside a store op — the op itself may be torn
    Close, ///< inside the epoch's batch fence (threshold close)
    Drain, ///< inside the final drain close
};

std::size_t
stagedBytes(const Op &op)
{
    return op.key.size() + op.value.size() + 1;
}

} // namespace

GroupCommitMatrixResult
runGroupCommitMatrix(const GroupCommitMatrixConfig &config)
{
    GroupCommitMatrixResult result;
    result.report = InvariantReport(
        std::string("group-commit-matrix:") + kv::kvKindName(config.kind) +
        ":epoch" + std::to_string(config.epochOps) + ":seed" +
        std::to_string(config.seed));
    InvariantReport &report = result.report;

    std::vector<Op> ops =
        recordOps(config.seed, config.opCount, config.keyCount);

    // The epoch closes on the op-count threshold only; the bytes
    // threshold is parked out of reach so sweeps are comparable
    // across backends with different payload sizes.
    pm::CommitEpochConfig epoch_config;
    epoch_config.maxOps = config.epochOps;
    epoch_config.maxBytes = std::numeric_limits<std::size_t>::max();

    // Pass 1: the no-crash group-commit run. Every applied op stages
    // its "ack" into the epoch; the completion advances a contiguous
    // acked watermark only when the covering batch fence has retired.
    std::map<std::string, std::string> finalModel;
    {
        pm::PmHeap heap(config.heapBytes);
        auto store = kv::makeKvStore(config.kind, heap);
        std::size_t boundaries = 0;
        heap.setPersistBoundaryHook(
            [&boundaries](pm::PersistBoundary) { boundaries++; });
        std::size_t acked = 0;
        pm::CommitEpoch epoch(epoch_config, [&heap]() { heap.fence(); });
        for (std::size_t i = 0; i < ops.size(); i++) {
            applyToStore(*store, ops[i]);
            applyToModel(finalModel, ops[i]);
            auto staged = epoch.stage(
                stagedBytes(ops[i]), [&acked, i]() { acked = i + 1; },
                static_cast<Tick>(i));
            if (staged.shouldClose)
                epoch.close(pm::EpochCloseReason::Ops,
                            static_cast<Tick>(i));
        }
        epoch.close(pm::EpochCloseReason::Drain,
                    static_cast<Tick>(ops.size()));
        heap.setPersistBoundaryHook(nullptr);
        result.boundaries = boundaries;
        result.epochsClosed =
            static_cast<std::size_t>(epoch.stats().epochsClosed);
        result.acksReleased = acked;
        if (acked != ops.size())
            report.addViolation(
                "P1-durability",
                "no-crash run: drain close released " +
                    std::to_string(acked) + " of " +
                    std::to_string(ops.size()) + " deferred acks");
        checkContent(*store, finalModel, config.keyCount, "no-crash run",
                     report);
        checkCount(*store, finalModel, "no-crash run", report);
    }

    std::vector<std::size_t> crashPoints =
        spreadCrashPoints(result.boundaries, config.maxCrashes);

    for (std::size_t crash_at : crashPoints) {
        pm::PmHeap heap(config.heapBytes);
        auto store = kv::makeKvStore(config.kind, heap);
        pm::PmOffset header_off = store->headerOffset();

        std::size_t seen = 0;
        heap.setPersistBoundaryHook(
            [&seen, crash_at](pm::PersistBoundary b) {
                if (++seen == crash_at)
                    throw InjectedCrash{b, crash_at};
            });

        std::size_t acked = 0;
        pm::CommitEpoch epoch(epoch_config, [&heap]() { heap.fence(); });
        GcCrashSite site = GcCrashSite::None;
        InjectedCrash crash;
        std::size_t j = 0;       ///< index of the op being executed
        std::size_t applied = 0; ///< ops known fully applied to the store
        for (; j < ops.size(); j++) {
            try {
                applyToStore(*store, ops[j]);
            } catch (const InjectedCrash &c) {
                site = GcCrashSite::Apply;
                crash = c;
                break;
            }
            applied = j + 1;
            auto staged = epoch.stage(
                stagedBytes(ops[j]), [&acked, j]() { acked = j + 1; },
                static_cast<Tick>(j));
            if (staged.shouldClose) {
                try {
                    epoch.close(pm::EpochCloseReason::Ops,
                                static_cast<Tick>(j));
                } catch (const InjectedCrash &c) {
                    site = GcCrashSite::Close;
                    crash = c;
                    break;
                }
            }
        }
        if (site == GcCrashSite::None && j == ops.size()) {
            try {
                epoch.close(pm::EpochCloseReason::Drain,
                            static_cast<Tick>(ops.size()));
            } catch (const InjectedCrash &c) {
                site = GcCrashSite::Drain;
                crash = c;
            }
        }
        if (site == GcCrashSite::None) {
            report.addViolation(
                "determinism",
                "boundary " + std::to_string(crash_at) +
                    " counted in pass 1 was never reached on replay");
            continue;
        }
        result.crashesInjected++;
        if (acked < applied)
            result.midEpochCrashes++;

        std::string where =
            "crash at boundary " + std::to_string(crash_at) + " (" +
            pm::persistBoundaryName(crash.boundary) + ") in op " +
            std::to_string(j) +
            (site == GcCrashSite::Apply
                 ? ""
                 : site == GcCrashSite::Close ? ", batch fence"
                                              : ", drain fence");

        // Roll back the batch remnants: staged-unfenced completions
        // are abandoned, never run — no ack escapes for them.
        std::size_t acked_before = acked;
        result.opsAbandoned += epoch.abandon();
        if (epoch.open())
            report.addViolation("P1-durability",
                                where + ": abandon left the epoch open");
        if (acked != acked_before)
            report.addViolation(
                "P1-durability",
                where + ": abandon completed a staged op (ack escaped "
                        "without a covering fence)");

        heap.crash(); // discards staged ranges, clears the hook
        store = kv::openKvStore(heap, header_off);

        // P1 precondition: an ack can never outrun the applied prefix
        // (completions only run after the fence covering their op).
        if (acked > applied)
            report.addViolation(
                "P1-durability",
                where + ": acked watermark " + std::to_string(acked) +
                    " ahead of applied prefix " + std::to_string(applied));

        // Content check, as in the base matrix: the recovered state is
        // the applied prefix, with only the in-flight op ambiguous (it
        // happened entirely or not at all). Acked ops are a subset of
        // the applied prefix, so this also proves no acked op is lost.
        std::map<std::string, std::string> model;
        for (std::size_t r = 0; r < applied; r++)
            applyToModel(model, ops[r]);
        if (site == GcCrashSite::Apply) {
            const Op &inflight = ops[j];
            std::optional<Bytes> probe = store->get(kv::asKey(inflight.key));
            bool op_applied;
            if (inflight.isPut)
                op_applied = probe && toString(*probe) == inflight.value;
            else
                op_applied = model.count(inflight.key) != 0 && !probe;
            if (op_applied) {
                applyToModel(model, inflight);
                applied = j + 1;
            }
        }
        checkContent(*store, model, config.keyCount, where, report);
        checkCount(*store, model, where, report);

        // Client-retry contract: everything past the acked watermark
        // was never acknowledged, so the client resends it — including
        // ops that were applied but whose batch fence never retired.
        // The replay runs through a fresh epoch on the recovered heap
        // and must converge to exactly the no-crash final state.
        std::size_t replay_acked = acked;
        pm::CommitEpoch replay(epoch_config, [&heap]() { heap.fence(); });
        for (std::size_t r = acked; r < ops.size(); r++) {
            applyToStore(*store, ops[r]);
            auto staged = replay.stage(
                stagedBytes(ops[r]),
                [&replay_acked, r]() { replay_acked = r + 1; },
                static_cast<Tick>(r));
            if (staged.shouldClose)
                replay.close(pm::EpochCloseReason::Ops,
                             static_cast<Tick>(r));
        }
        replay.close(pm::EpochCloseReason::Drain,
                     static_cast<Tick>(ops.size()));
        if (replay_acked != ops.size())
            report.addViolation(
                "P1-durability",
                where + ": replay released " +
                    std::to_string(replay_acked - acked) + " of " +
                    std::to_string(ops.size() - acked) + " resent acks");
        checkContent(*store, finalModel, config.keyCount,
                     where + ", after retry replay", report);
        checkCount(*store, finalModel, where + ", after retry replay",
                   report);
    }

    report.setCounter("boundaries", result.boundaries);
    report.setCounter("crashes-injected", result.crashesInjected);
    report.setCounter("epochs-closed", result.epochsClosed);
    report.setCounter("acks-released", result.acksReleased);
    report.setCounter("mid-epoch-crashes", result.midEpochCrashes);
    report.setCounter("ops-abandoned", result.opsAbandoned);
    report.setCounter("ops", static_cast<std::uint64_t>(ops.size()));
    report.setCounter("epoch-ops", config.epochOps);
    return result;
}

} // namespace pmnet::fault
