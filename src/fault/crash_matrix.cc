#include "fault/crash_matrix.h"

#include <map>

#include "common/rng.h"

namespace pmnet::fault {

namespace {

/** One recorded KV operation. */
struct Op
{
    bool isPut = true;
    std::string key;
    std::string value; ///< unique per step, so probes are unambiguous
};

Bytes
toBytes(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

std::string
toString(const Bytes &b)
{
    return std::string(b.begin(), b.end());
}

/**
 * Record the op sequence. Small key universe + put-heavy mix, so the
 * sweep exercises inserts, in-place value updates, erases of present
 * keys and erases of absent keys on every backend.
 */
std::vector<Op>
recordOps(const CrashMatrixConfig &config)
{
    Rng rng(config.seed);
    std::vector<Op> ops;
    ops.reserve(static_cast<std::size_t>(config.opCount));
    for (int i = 0; i < config.opCount; i++) {
        Op op;
        op.key = "k" + std::to_string(rng.nextUInt(
                           static_cast<std::uint64_t>(config.keyCount)));
        op.isPut = rng.nextDouble() < 0.7;
        if (op.isPut)
            op.value = "v" + std::to_string(i) + "-" + op.key;
        ops.push_back(std::move(op));
    }
    return ops;
}

void
applyToStore(kv::KvStore &store, const Op &op)
{
    if (op.isPut)
        store.put(op.key, toBytes(op.value));
    else
        store.erase(op.key);
}

void
applyToModel(std::map<std::string, std::string> &model, const Op &op)
{
    if (op.isPut)
        model[op.key] = op.value;
    else
        model.erase(op.key);
}

/**
 * Compare the recovered store's full content against @p model over
 * the whole key universe. Every divergence is a durability/atomicity
 * violation: either an acknowledged (fenced) state was lost, or a
 * partially applied op became visible.
 */
void
checkContent(const kv::KvStore &store,
             const std::map<std::string, std::string> &model,
             const CrashMatrixConfig &config, const std::string &where,
             InvariantReport &report)
{
    for (int k = 0; k < config.keyCount; k++) {
        std::string key = "k" + std::to_string(k);
        std::optional<Bytes> got = store.get(key);
        auto want = model.find(key);
        if (want == model.end()) {
            if (got)
                report.addViolation(
                    "P1-durability", where + ": key " + key +
                                         " should be absent, found \"" +
                                         toString(*got) + "\"");
        } else if (!got) {
            report.addViolation("P1-durability",
                                where + ": key " + key +
                                    " lost, expected \"" + want->second +
                                    "\"");
        } else if (toString(*got) != want->second) {
            report.addViolation("P1-durability",
                                where + ": key " + key + " expected \"" +
                                    want->second + "\", found \"" +
                                    toString(*got) + "\"");
        }
    }
}

/**
 * Check the persisted element count against the model.
 * @return the lag (model size minus persisted count); |lag| == 1 is
 * the documented count-fence window, anything larger is a violation.
 */
std::int64_t
checkCount(const kv::KvStore &store,
           const std::map<std::string, std::string> &model,
           const std::string &where, InvariantReport &report)
{
    std::int64_t lag = static_cast<std::int64_t>(model.size()) -
                       static_cast<std::int64_t>(store.size());
    if (lag > 1 || lag < -1)
        report.addViolation(
            "P1-durability",
            where + ": persisted count " + std::to_string(store.size()) +
                " drifted from content size " +
                std::to_string(model.size()) +
                " by more than the one-op count-lag window");
    return lag;
}

} // namespace

CrashMatrixResult
runCrashMatrix(const CrashMatrixConfig &config)
{
    CrashMatrixResult result;
    result.report = InvariantReport(
        std::string("crash-matrix:") + kv::kvKindName(config.kind) +
        ":seed" + std::to_string(config.seed));
    InvariantReport &report = result.report;

    std::vector<Op> ops = recordOps(config);

    // Pass 1: count the persist boundaries the recorded sequence
    // crosses (store construction excluded — the sweep targets the
    // operation sequence) and sanity-check the no-crash final state.
    std::map<std::string, std::string> finalModel;
    {
        pm::PmHeap heap(config.heapBytes);
        auto store = kv::makeKvStore(config.kind, heap);
        std::size_t boundaries = 0;
        heap.setPersistBoundaryHook(
            [&boundaries](pm::PersistBoundary) { boundaries++; });
        for (const Op &op : ops) {
            applyToStore(*store, op);
            applyToModel(finalModel, op);
        }
        heap.setPersistBoundaryHook(nullptr);
        result.boundaries = boundaries;
        checkContent(*store, finalModel, config, "no-crash run", report);
        checkCount(*store, finalModel, "no-crash run", report);
    }

    // Choose the crash points: every boundary, or an even spread of
    // maxCrashes across the range (--smoke).
    std::vector<std::size_t> crashPoints;
    if (config.maxCrashes <= 0 ||
        static_cast<std::size_t>(config.maxCrashes) >= result.boundaries) {
        for (std::size_t c = 1; c <= result.boundaries; c++)
            crashPoints.push_back(c);
    } else {
        double stride = static_cast<double>(result.boundaries) /
                        static_cast<double>(config.maxCrashes);
        for (int i = 0; i < config.maxCrashes; i++)
            crashPoints.push_back(static_cast<std::size_t>(
                                      static_cast<double>(i) * stride) +
                                  1);
    }

    for (std::size_t crash_at : crashPoints) {
        pm::PmHeap heap(config.heapBytes);
        auto store = kv::makeKvStore(config.kind, heap);
        pm::PmOffset header_off = store->headerOffset();

        std::size_t seen = 0;
        heap.setPersistBoundaryHook([&seen, crash_at](pm::PersistBoundary b) {
            if (++seen == crash_at)
                throw InjectedCrash{b, crash_at};
        });

        std::map<std::string, std::string> model;
        std::size_t j = 0;
        bool crashed = false;
        InjectedCrash crash;
        for (; j < ops.size(); j++) {
            try {
                applyToStore(*store, ops[j]);
            } catch (const InjectedCrash &c) {
                crashed = true;
                crash = c;
                break;
            }
            applyToModel(model, ops[j]);
        }

        if (!crashed) {
            // The boundary stream is a pure function of the sequence;
            // not reaching a counted boundary is a determinism bug.
            report.addViolation(
                "determinism",
                "boundary " + std::to_string(crash_at) +
                    " counted in pass 1 was never reached on replay");
            continue;
        }
        result.crashesInjected++;

        std::string where = "crash at boundary " +
                            std::to_string(crash_at) + " (" +
                            pm::persistBoundaryName(crash.boundary) +
                            ") in op " + std::to_string(j);

        heap.crash(); // discards staged ranges, clears the hook
        store = kv::openKvStore(heap, header_off);

        // Atomicity: the in-flight op either happened entirely or not
        // at all. Which one is decided by probing its key — per-step
        // values are unique, so the probe cannot be fooled by an
        // earlier write of the same key.
        const Op &inflight = ops[j];
        std::optional<Bytes> probe = store->get(inflight.key);
        bool applied;
        if (inflight.isPut)
            applied = probe && toString(*probe) == inflight.value;
        else
            applied = model.count(inflight.key) != 0 && !probe;
        if (applied)
            applyToModel(model, inflight);

        checkContent(*store, model, config, where, report);
        std::int64_t lag = checkCount(*store, model, where, report);
        if (lag != 0)
            result.countLagObserved++;

        // Resume the rest of the sequence on the recovered store; it
        // must converge to exactly the no-crash final state (with the
        // count still within its original lag — bumps are relative).
        for (std::size_t r = j + (applied ? 1 : 0); r < ops.size(); r++) {
            applyToStore(*store, ops[r]);
            applyToModel(model, ops[r]);
        }
        checkContent(*store, finalModel, config, where + ", after resume",
                     report);
        checkCount(*store, finalModel, where + ", after resume", report);
        if (model != finalModel)
            report.addViolation("P1-durability",
                                where + ": resumed model diverged from "
                                        "the no-crash reference");
    }

    report.setCounter("boundaries", result.boundaries);
    report.setCounter("crashes-injected", result.crashesInjected);
    report.setCounter("count-lag-observed", result.countLagObserved);
    report.setCounter("ops", static_cast<std::uint64_t>(ops.size()));
    report.setCounter("final-keys", finalModel.size());
    return result;
}

} // namespace pmnet::fault
