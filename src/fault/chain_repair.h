/**
 * @file
 * Chain-repair orchestration for a sharded PMNet fabric (DESIGN.md
 * §14).
 *
 * When a device in a shard's replication chain suffers a permanent
 * hardware failure, the shard is marked Failed in the ShardMap:
 * clients park new requests for the shard and hold retries (the chain
 * is a black hole). Once the operator swaps the unit (replaceUnit —
 * it comes back with an empty log), the shard moves to Resilvering
 * and this coordinator drives the repair to completion:
 *
 *  1. wait until every device in the shard's chain is powered;
 *  2. pick a surviving source device (any powered peer) and start a
 *     resilver stream (PmnetDevice::resilverTo) toward the
 *     replacement, unless one is already running;
 *  3. once the stream goes quiet, verify: every live entry of every
 *     surviving peer's log must be present in the replacement's log.
 *     Missing entries (writes raced the stream snapshot, or the
 *     source crashed mid-push) simply start another stream — pushes
 *     are idempotent, so restarting is always safe;
 *  4. when verification passes, the shard returns to Healthy and
 *     parked client traffic flushes via the retry timers.
 *
 * poll() must be called between simulation windows (the coordinator
 * thread, while no partition event is executing): it reads device
 * state across partitions, which is only quiescent there. The state
 * machine survives arbitrary additional crashes mid-repair — a crash
 * of the source or target mid-stream just re-enters step 1/2 on the
 * next poll.
 */

#ifndef PMNET_FAULT_CHAIN_REPAIR_H
#define PMNET_FAULT_CHAIN_REPAIR_H

#include "testbed/system.h"

namespace pmnet::fault {

/** Drives shard chain repairs to completion between sim windows. */
class ChainRepairCoordinator
{
  public:
    explicit ChainRepairCoordinator(testbed::Testbed &bed) : bed_(bed) {}

    /**
     * Register a repair: @p target (index within the shard's chain)
     * of @p shard needs its log re-silvered from the surviving peers.
     * The shard must already be marked Resilvering by the caller.
     */
    void beginRepair(unsigned shard, std::size_t target);

    /**
     * Advance every registered repair one step (see file comment).
     * Call only between simulation windows. Returns true when no
     * repair remains active.
     */
    bool poll();

    bool idle() const { return repairs_.empty(); }

    /** Resilver streams started (>1 per repair = restarts). */
    std::uint64_t streamsStarted() const { return streamsStarted_; }
    std::uint64_t repairsCompleted() const { return repairsCompleted_; }

  private:
    struct Repair
    {
        unsigned shard;
        std::size_t target;
    };

    /** Every peer-live log entry present in the target's log? */
    bool verified(const Repair &repair) const;

    testbed::Testbed &bed_;
    std::vector<Repair> repairs_;
    std::uint64_t streamsStarted_ = 0;
    std::uint64_t repairsCompleted_ = 0;
};

} // namespace pmnet::fault

#endif // PMNET_FAULT_CHAIN_REPAIR_H
