/**
 * @file
 * Exhaustive persist-boundary crash matrix for the KV backends
 * (DESIGN.md section 10).
 *
 * The scheduler records a deterministic mixed put/del/update sequence,
 * counts every persist boundary (PmHeap::PersistBoundary — flush
 * entry, fence entry, fence retire) the sequence crosses, then
 * re-executes it once per boundary, crashing exactly there and
 * recovering via openKvStore(). After each crash it checks:
 *
 *  - the recovered content equals the reference state either before
 *    or after the in-flight operation (atomicity: the op happened
 *    entirely or not at all — which of the two is decided by probing
 *    the in-flight key, whose per-step values are unique);
 *  - the persisted element count tracks the content within the
 *    documented +/-1 count-lag window (structures that commit the
 *    count in a separate fence after the linearization swap);
 *  - resuming the remaining operations on the recovered store ends in
 *    exactly the no-crash final state.
 *
 * This is the Correct/NearPM-style "crash at every ordering point"
 * methodology applied to all six backends, instead of the random
 * sampling in tests/test_properties.cc.
 */

#ifndef PMNET_FAULT_CRASH_MATRIX_H
#define PMNET_FAULT_CRASH_MATRIX_H

#include "fault/invariants.h"
#include "kv/kv_store.h"

namespace pmnet::fault {

/** Crash injected by the boundary hook; caught by the scheduler. */
struct InjectedCrash
{
    pm::PersistBoundary boundary = pm::PersistBoundary::Flush;
    std::size_t index = 0; ///< 1-based boundary number hit
};

/** Parameters of one crash-matrix sweep. */
struct CrashMatrixConfig
{
    kv::KvKind kind = kv::KvKind::Hashmap;
    /** Seed of the op-sequence generator. */
    std::uint64_t seed = 1;
    /** Mixed put/del/update operations in the recorded sequence. */
    int opCount = 48;
    /** Key-universe size (small, so ops collide into updates). */
    int keyCount = 10;
    /** Heap size per execution. */
    std::uint64_t heapBytes = 8ull << 20;
    /**
     * Cap on injected crashes: 0 sweeps every boundary exhaustively;
     * N > 0 spreads N crashes evenly across the boundary range (the
     * CI --smoke mode).
     */
    int maxCrashes = 0;
};

/** Outcome of one sweep. */
struct CrashMatrixResult
{
    /** Persist boundaries the recorded sequence crosses. */
    std::size_t boundaries = 0;
    /** Crash-recover executions actually performed. */
    std::size_t crashesInjected = 0;
    /**
     * Recoveries where the persisted count lagged the content by one
     * (the documented separate-count-fence window); informational,
     * not a violation.
     */
    std::size_t countLagObserved = 0;
    InvariantReport report;
};

/** Run the sweep; result.report.clean() means all invariants held. */
CrashMatrixResult runCrashMatrix(const CrashMatrixConfig &config);

/**
 * Parameters of one group-commit crash sweep.
 *
 * Same recorded sequence as the base matrix, but every applied op is
 * staged into a pm::CommitEpoch whose fence hook is the real
 * PmHeap::fence(), and its "ack" (completion) is held until the
 * epoch closes. Crashing at every persist boundary therefore also
 * lands inside open epochs and inside the epoch's own batch fence.
 */
struct GroupCommitMatrixConfig
{
    kv::KvKind kind = kv::KvKind::Hashmap;
    std::uint64_t seed = 1;
    int opCount = 48;
    int keyCount = 10;
    std::uint64_t heapBytes = 8ull << 20;
    /** 0 = exhaustive; N > 0 spreads N crashes evenly (--smoke). */
    int maxCrashes = 0;
    /** Epoch close threshold in ops (the group-commit batch size). */
    std::uint32_t epochOps = 4;
};

/** Outcome of one group-commit sweep. */
struct GroupCommitMatrixResult
{
    std::size_t boundaries = 0;
    std::size_t crashesInjected = 0;
    /** Epochs the no-crash run closed (ops thresholds + final drain). */
    std::size_t epochsClosed = 0;
    /** Acks the no-crash run released (must equal opCount). */
    std::size_t acksReleased = 0;
    /** Crashes that landed with applied-but-unacked ops outstanding. */
    std::size_t midEpochCrashes = 0;
    /** Staged-unfenced completions rolled back across all crashes. */
    std::size_t opsAbandoned = 0;
    InvariantReport report;
};

/**
 * Sweep crashes across every persist boundary of the group-commit
 * execution. After each crash: no acked op may be lost, staged batch
 * remnants must roll back (abandon, never complete), and replaying
 * from the acked watermark — the client-retry contract: unacked ops
 * are resent — must converge to the no-crash final state.
 */
GroupCommitMatrixResult
runGroupCommitMatrix(const GroupCommitMatrixConfig &config);

} // namespace pmnet::fault

#endif // PMNET_FAULT_CRASH_MATRIX_H
