#include "apps/kv_protocol.h"

#include <unordered_map>

namespace pmnet::apps {

namespace {

/** Response payload discriminator byte. */
enum class RespKind : std::uint8_t { Generic = 0x80, Get = 0x81 };

} // namespace

CommandClass
classifyCommand(const std::string &verb)
{
    static const std::unordered_map<std::string, CommandClass> table = {
        {"SET", CommandClass::Update},
        {"DEL", CommandClass::Update},
        {"INCR", CommandClass::Update},
        {"INCRBY", CommandClass::Update},
        {"LPUSH", CommandClass::Update},
        {"RPUSH", CommandClass::Update},
        {"LPOP", CommandClass::Update},
        {"SADD", CommandClass::Update},
        {"SREM", CommandClass::Update},
        {"HSET", CommandClass::Update},
        {"HDEL", CommandClass::Update},
        {"GET", CommandClass::Read},
        {"EXISTS", CommandClass::Read},
        {"LRANGE", CommandClass::Read},
        {"LLEN", CommandClass::Read},
        {"SISMEMBER", CommandClass::Read},
        {"SMEMBERS", CommandClass::Read},
        {"SCARD", CommandClass::Read},
        {"HGET", CommandClass::Read},
        {"LOCK", CommandClass::Sync},
        {"UNLOCK", CommandClass::Sync},
    };
    auto it = table.find(verb);
    return it == table.end() ? CommandClass::Read : it->second;
}

bool
commandIsUpdate(const Command &cmd)
{
    return !cmd.args.empty() &&
           classifyCommand(cmd.verb()) == CommandClass::Update;
}

Bytes
encodeCommand(const Command &cmd)
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU16(static_cast<std::uint16_t>(cmd.args.size()));
    for (const std::string &arg : cmd.args)
        writer.writeString(arg);
    return out;
}

std::optional<Command>
decodeCommand(const Bytes &wire)
{
    ByteReader reader(wire);
    std::uint16_t argc = reader.readU16();
    if (!reader.ok() || argc == 0)
        return std::nullopt;
    Command cmd;
    cmd.args.reserve(argc);
    for (std::uint16_t i = 0; i < argc; i++)
        cmd.args.push_back(reader.readString());
    if (!reader.ok())
        return std::nullopt;
    return cmd;
}

Bytes
encodeResponse(RespStatus status, const std::string &value)
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU8(static_cast<std::uint8_t>(RespKind::Generic));
    writer.writeU8(static_cast<std::uint8_t>(status));
    writer.writeString(value);
    return out;
}

Bytes
encodeGetResponse(RespStatus status, const std::string &key,
                  const std::string &value)
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU8(static_cast<std::uint8_t>(RespKind::Get));
    writer.writeU8(static_cast<std::uint8_t>(status));
    writer.writeString(key);
    writer.writeString(value);
    return out;
}

std::optional<Response>
decodeResponse(const Bytes &wire)
{
    ByteReader reader(wire);
    std::uint8_t kind = reader.readU8();
    std::uint8_t status = reader.readU8();
    if (!reader.ok() || status > 3)
        return std::nullopt;
    Response resp;
    resp.status = static_cast<RespStatus>(status);
    if (kind == static_cast<std::uint8_t>(RespKind::Get)) {
        resp.key = reader.readString();
        resp.value = reader.readString();
    } else if (kind == static_cast<std::uint8_t>(RespKind::Generic)) {
        resp.value = reader.readString();
    } else {
        return std::nullopt;
    }
    if (!reader.ok())
        return std::nullopt;
    return resp;
}

std::optional<pmnetdev::ParsedUpdate>
KvCacheCodec::parseUpdate(const Bytes &payload) const
{
    auto cmd = decodeCommand(payload);
    if (!cmd || cmd->args.size() != 3 || cmd->verb() != "SET")
        return std::nullopt;
    pmnetdev::ParsedUpdate parsed;
    parsed.key = cmd->args[1];
    parsed.value = Bytes(cmd->args[2].begin(), cmd->args[2].end());
    return parsed;
}

std::optional<std::string>
KvCacheCodec::parseRead(const Bytes &payload) const
{
    auto cmd = decodeCommand(payload);
    if (!cmd || cmd->args.size() != 2 || cmd->verb() != "GET")
        return std::nullopt;
    return cmd->args[1];
}

std::optional<pmnetdev::ParsedUpdate>
KvCacheCodec::parseReadResponse(const Bytes &payload) const
{
    auto resp = decodeResponse(payload);
    if (!resp || resp->status != RespStatus::Ok || resp->key.empty())
        return std::nullopt;
    pmnetdev::ParsedUpdate parsed;
    parsed.key = resp->key;
    parsed.value = Bytes(resp->value.begin(), resp->value.end());
    return parsed;
}

Bytes
KvCacheCodec::makeReadResponse(const std::string &key,
                               const Bytes &value) const
{
    return encodeGetResponse(RespStatus::Ok, key,
                             std::string(value.begin(), value.end()));
}

} // namespace pmnet::apps
