#include "apps/kv_protocol.h"

#include <unordered_map>

namespace pmnet::apps {

namespace {

/** Response payload discriminator byte. */
enum class RespKind : std::uint8_t { Generic = 0x80, Get = 0x81 };

} // namespace

CommandClass
classifyCommand(const std::string &verb)
{
    static const std::unordered_map<std::string, CommandClass> table = {
        {"SET", CommandClass::Update},
        {"DEL", CommandClass::Update},
        {"INCR", CommandClass::Update},
        {"INCRBY", CommandClass::Update},
        {"LPUSH", CommandClass::Update},
        {"RPUSH", CommandClass::Update},
        {"LPOP", CommandClass::Update},
        {"SADD", CommandClass::Update},
        {"SREM", CommandClass::Update},
        {"HSET", CommandClass::Update},
        {"HDEL", CommandClass::Update},
        {"GET", CommandClass::Read},
        {"EXISTS", CommandClass::Read},
        {"LRANGE", CommandClass::Read},
        {"LLEN", CommandClass::Read},
        {"SISMEMBER", CommandClass::Read},
        {"SMEMBERS", CommandClass::Read},
        {"SCARD", CommandClass::Read},
        {"HGET", CommandClass::Read},
        {"LOCK", CommandClass::Sync},
        {"UNLOCK", CommandClass::Sync},
    };
    auto it = table.find(verb);
    return it == table.end() ? CommandClass::Read : it->second;
}

bool
commandIsUpdate(const Command &cmd)
{
    return !cmd.args.empty() &&
           classifyCommand(cmd.verb()) == CommandClass::Update;
}

Bytes
encodeCommand(const Command &cmd)
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU16(static_cast<std::uint16_t>(cmd.args.size()));
    for (const std::string &arg : cmd.args)
        writer.writeString(arg);
    return out;
}

std::optional<Command>
decodeCommand(const Bytes &wire)
{
    ByteReader reader(wire);
    std::uint16_t argc = reader.readU16();
    if (!reader.ok() || argc == 0)
        return std::nullopt;
    Command cmd;
    cmd.args.reserve(argc);
    for (std::uint16_t i = 0; i < argc; i++)
        cmd.args.push_back(reader.readString());
    if (!reader.ok())
        return std::nullopt;
    return cmd;
}

Bytes
encodeResponse(RespStatus status, const std::string &value)
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU8(static_cast<std::uint8_t>(RespKind::Generic));
    writer.writeU8(static_cast<std::uint8_t>(status));
    writer.writeString(value);
    return out;
}

Bytes
encodeGetResponse(RespStatus status, const std::string &key,
                  const std::string &value)
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU8(static_cast<std::uint8_t>(RespKind::Get));
    writer.writeU8(static_cast<std::uint8_t>(status));
    writer.writeString(key);
    writer.writeString(value);
    return out;
}

std::optional<Response>
decodeResponse(const Bytes &wire)
{
    ByteReader reader(wire);
    std::uint8_t kind = reader.readU8();
    std::uint8_t status = reader.readU8();
    if (!reader.ok() || status > 3)
        return std::nullopt;
    Response resp;
    resp.status = static_cast<RespStatus>(status);
    if (kind == static_cast<std::uint8_t>(RespKind::Get)) {
        resp.key = reader.readString();
        resp.value = reader.readString();
    } else if (kind == static_cast<std::uint8_t>(RespKind::Generic)) {
        resp.value = reader.readString();
    } else {
        return std::nullopt;
    }
    if (!reader.ok())
        return std::nullopt;
    return resp;
}

std::optional<pmnetdev::ParsedUpdate>
KvCacheCodec::parseUpdate(const Bytes &payload) const
{
    // Zero-copy decode of exactly {"SET", key, value}: no Command, no
    // string materialization — the returned views point into payload
    // and the key hash is computed here, once per packet.
    ByteReader reader(payload);
    if (reader.readU16() != 3)
        return std::nullopt;
    std::string_view verb = reader.readStringView();
    std::string_view key = reader.readStringView();
    std::string_view value = reader.readStringView();
    if (!reader.ok() || verb != "SET")
        return std::nullopt;
    return pmnetdev::ParsedUpdate{KeyRef(key), value};
}

std::optional<KeyRef>
KvCacheCodec::parseRead(const Bytes &payload) const
{
    ByteReader reader(payload);
    if (reader.readU16() != 2)
        return std::nullopt;
    std::string_view verb = reader.readStringView();
    std::string_view key = reader.readStringView();
    if (!reader.ok() || verb != "GET")
        return std::nullopt;
    return KeyRef(key);
}

std::optional<pmnetdev::ParsedUpdate>
KvCacheCodec::parseReadResponse(const Bytes &payload) const
{
    ByteReader reader(payload);
    std::uint8_t kind = reader.readU8();
    std::uint8_t status = reader.readU8();
    if (!reader.ok() || kind != static_cast<std::uint8_t>(RespKind::Get) ||
        status != static_cast<std::uint8_t>(RespStatus::Ok))
        return std::nullopt;
    std::string_view key = reader.readStringView();
    std::string_view value = reader.readStringView();
    if (!reader.ok() || key.empty())
        return std::nullopt;
    return pmnetdev::ParsedUpdate{KeyRef(key), value};
}

Bytes
KvCacheCodec::makeReadResponse(std::string_view key,
                               const Bytes &value) const
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU8(static_cast<std::uint8_t>(RespKind::Get));
    writer.writeU8(static_cast<std::uint8_t>(RespStatus::Ok));
    writer.writeString(key);
    writer.writeString(std::string_view(
        reinterpret_cast<const char *>(value.data()), value.size()));
    return out;
}

} // namespace pmnet::apps
