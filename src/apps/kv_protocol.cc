#include "apps/kv_protocol.h"

#include <cstdlib>
#include <unordered_map>

namespace pmnet::apps {

namespace {

/** Response payload discriminator byte. */
enum class RespKind : std::uint8_t { Generic = 0x80, Get = 0x81 };

} // namespace

CommandClass
classifyCommand(const std::string &verb)
{
    static const std::unordered_map<std::string, CommandClass> table = {
        {"SET", CommandClass::Update},
        {"DEL", CommandClass::Update},
        {"INCR", CommandClass::Update},
        {"INCRBY", CommandClass::Update},
        {"APPEND", CommandClass::Update},
        {"CAS", CommandClass::Update},
        {"LPUSH", CommandClass::Update},
        {"RPUSH", CommandClass::Update},
        {"LPOP", CommandClass::Update},
        {"SADD", CommandClass::Update},
        {"SREM", CommandClass::Update},
        {"HSET", CommandClass::Update},
        {"HDEL", CommandClass::Update},
        {"GET", CommandClass::Read},
        {"EXISTS", CommandClass::Read},
        {"LRANGE", CommandClass::Read},
        {"LLEN", CommandClass::Read},
        {"SISMEMBER", CommandClass::Read},
        {"SMEMBERS", CommandClass::Read},
        {"SCARD", CommandClass::Read},
        {"HGET", CommandClass::Read},
        {"LOCK", CommandClass::Sync},
        {"UNLOCK", CommandClass::Sync},
    };
    auto it = table.find(verb);
    return it == table.end() ? CommandClass::Read : it->second;
}

bool
commandIsUpdate(const Command &cmd)
{
    return !cmd.args.empty() &&
           classifyCommand(cmd.verb()) == CommandClass::Update;
}

Bytes
encodeCommand(const Command &cmd)
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU16(static_cast<std::uint16_t>(cmd.args.size()));
    for (const std::string &arg : cmd.args)
        writer.writeString(arg);
    return out;
}

std::optional<Command>
decodeCommand(const Bytes &wire)
{
    ByteReader reader(wire);
    std::uint16_t argc = reader.readU16();
    if (!reader.ok() || argc == 0)
        return std::nullopt;
    Command cmd;
    cmd.args.reserve(argc);
    for (std::uint16_t i = 0; i < argc; i++)
        cmd.args.push_back(reader.readString());
    if (!reader.ok())
        return std::nullopt;
    return cmd;
}

Bytes
encodeResponse(RespStatus status, const std::string &value)
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU8(static_cast<std::uint8_t>(RespKind::Generic));
    writer.writeU8(static_cast<std::uint8_t>(status));
    writer.writeString(value);
    return out;
}

Bytes
encodeGetResponse(RespStatus status, const std::string &key,
                  const std::string &value)
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU8(static_cast<std::uint8_t>(RespKind::Get));
    writer.writeU8(static_cast<std::uint8_t>(status));
    writer.writeString(key);
    writer.writeString(value);
    return out;
}

std::optional<Response>
decodeResponse(const Bytes &wire)
{
    ByteReader reader(wire);
    std::uint8_t kind = reader.readU8();
    std::uint8_t status = reader.readU8();
    if (!reader.ok() || status > 3)
        return std::nullopt;
    Response resp;
    resp.status = static_cast<RespStatus>(status);
    if (kind == static_cast<std::uint8_t>(RespKind::Get)) {
        resp.key = reader.readString();
        resp.value = reader.readString();
    } else if (kind == static_cast<std::uint8_t>(RespKind::Generic)) {
        resp.value = reader.readString();
    } else {
        return std::nullopt;
    }
    if (!reader.ok())
        return std::nullopt;
    return resp;
}

std::optional<pmnetdev::ParsedUpdate>
KvCacheCodec::parseUpdate(const Bytes &payload) const
{
    // Zero-copy decode of exactly {"SET", key, value}: no Command, no
    // string materialization — the returned views point into payload
    // and the key hash is computed here, once per packet.
    ByteReader reader(payload);
    if (reader.readU16() != 3)
        return std::nullopt;
    std::string_view verb = reader.readStringView();
    std::string_view key = reader.readStringView();
    std::string_view value = reader.readStringView();
    if (!reader.ok() || verb != "SET")
        return std::nullopt;
    return pmnetdev::ParsedUpdate{KeyRef(key), value};
}

std::optional<KeyRef>
KvCacheCodec::parseRead(const Bytes &payload) const
{
    ByteReader reader(payload);
    if (reader.readU16() != 2)
        return std::nullopt;
    std::string_view verb = reader.readStringView();
    std::string_view key = reader.readStringView();
    if (!reader.ok() || verb != "GET")
        return std::nullopt;
    return KeyRef(key);
}

std::optional<pmnetdev::ParsedUpdate>
KvCacheCodec::parseReadResponse(const Bytes &payload) const
{
    ByteReader reader(payload);
    std::uint8_t kind = reader.readU8();
    std::uint8_t status = reader.readU8();
    if (!reader.ok() || kind != static_cast<std::uint8_t>(RespKind::Get) ||
        status != static_cast<std::uint8_t>(RespStatus::Ok))
        return std::nullopt;
    std::string_view key = reader.readStringView();
    std::string_view value = reader.readStringView();
    if (!reader.ok() || key.empty())
        return std::nullopt;
    return pmnetdev::ParsedUpdate{KeyRef(key), value};
}

Bytes
KvCacheCodec::makeReadResponse(std::string_view key,
                               const Bytes &value) const
{
    Bytes out;
    ByteWriter writer(out);
    writer.writeU8(static_cast<std::uint8_t>(RespKind::Get));
    writer.writeU8(static_cast<std::uint8_t>(RespStatus::Ok));
    writer.writeString(key);
    writer.writeString(std::string_view(
        reinterpret_cast<const char *>(value.data()), value.size()));
    return out;
}

bool
isNearDataVerb(const std::string &verb)
{
    return verb == "INCR" || verb == "INCRBY" || verb == "APPEND" ||
           verb == "CAS";
}

namespace {

/** Decoded argv views of a near-data payload (zero-copy). */
struct NearDataArgs
{
    std::string_view verb;
    std::string_view key;
    std::string_view arg2;
    std::string_view arg3;
    std::uint16_t argc = 0;
};

std::optional<NearDataArgs>
parseNearDataArgs(const Bytes &payload)
{
    ByteReader reader(payload);
    NearDataArgs out;
    out.argc = reader.readU16();
    if (!reader.ok() || out.argc < 2 || out.argc > 4)
        return std::nullopt;
    out.verb = reader.readStringView();
    out.key = reader.readStringView();
    if (out.argc >= 3)
        out.arg2 = reader.readStringView();
    if (out.argc == 4)
        out.arg3 = reader.readStringView();
    if (!reader.ok())
        return std::nullopt;
    return out;
}

/** Arity check matching CommandStore's dispatch table. */
bool
nearDataArityOk(const NearDataArgs &args)
{
    if (args.verb == "INCR")
        return args.argc == 2;
    if (args.verb == "INCRBY" || args.verb == "APPEND")
        return args.argc == 3;
    if (args.verb == "CAS")
        return args.argc == 4;
    return false;
}

std::string
toText(const Bytes &bytes)
{
    return std::string(bytes.begin(), bytes.end());
}

} // namespace

std::optional<KeyRef>
KvCacheCodec::parseNearData(const Bytes &payload) const
{
    auto args = parseNearDataArgs(payload);
    if (!args || !nearDataArityOk(*args))
        return std::nullopt;
    return KeyRef(args->key);
}

std::optional<pmnetdev::CacheCodec::NearDataResult>
KvCacheCodec::applyNearData(const Bytes &payload, const Bytes &value) const
{
    auto args = parseNearDataArgs(payload);
    if (!args || !nearDataArityOk(*args))
        return std::nullopt;

    NearDataResult out;
    if (args->verb == "INCR" || args->verb == "INCRBY") {
        // Mirror CommandStore::doIncr: atoll over the raw string
        // (NUL-terminated copies so parse edge cases stay identical).
        std::int64_t by =
            args->verb == "INCR"
                ? 1
                : std::atoll(std::string(args->arg2).c_str());
        std::int64_t current = std::atoll(toText(value).c_str());
        std::string text = std::to_string(current + by);
        out.wrote = true;
        out.newValue = Bytes(text.begin(), text.end());
        out.response = encodeResponse(RespStatus::Ok, text);
        return out;
    }
    if (args->verb == "APPEND") {
        std::string text = toText(value);
        text.append(args->arg2);
        out.wrote = true;
        out.newValue = Bytes(text.begin(), text.end());
        out.response = encodeResponse(RespStatus::Ok, text);
        return out;
    }
    if (args->verb == "CAS") {
        std::string current = toText(value);
        if (std::string_view(current) == args->arg2) {
            std::string text(args->arg3);
            out.wrote = true;
            out.newValue = Bytes(text.begin(), text.end());
            out.response = encodeResponse(RespStatus::Ok, text);
        } else {
            out.wrote = false;
            out.newValue = value;
            out.response = encodeResponse(RespStatus::Error, current);
        }
        return out;
    }
    return std::nullopt;
}

} // namespace pmnet::apps
