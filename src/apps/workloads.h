/**
 * @file
 * Client workload generators for the paper's evaluation (Sec VI-A2):
 *
 *  - YCSB-like GET/SET mix with zipfian key popularity, driving the
 *    five PMDK structures and the Redis store (Fig 19, Fig 20);
 *  - Retwis/Twitter (Fig 4): client-independent post/follow/timeline
 *    operations with client-side unique IDs (the paper's observation
 *    that clients need no cross-ordering);
 *  - simplified TPC-C (Fig 5): New-Order and Payment transactions
 *    whose district/warehouse mutations sit in LOCK/UNLOCK critical
 *    sections — the lock requests bypass PMNet (CommandClass::Sync)
 *    while the in-section updates still enjoy in-network logging.
 *    About 14% of generated requests touch the lock primitive,
 *    matching the paper's reported 13.7%.
 *
 * A workload emits *transactions*: short command sequences the driver
 * executes synchronously in order. The updateRatio knob blends in
 * read-only transactions for the Fig 19 sweep.
 */

#ifndef PMNET_APPS_WORKLOADS_H
#define PMNET_APPS_WORKLOADS_H

#include <memory>

#include "apps/command_store.h"
#include "common/rng.h"

namespace pmnet::apps {

/** A generator of client transactions. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Next transaction: commands executed in order, synchronously. */
    virtual std::vector<Command> nextTransaction(Rng &rng) = 0;

    /**
     * Load the initial dataset straight into the server store
     * (offline, before the measured run).
     */
    virtual void populate(CommandStore &store, Rng &rng);

    virtual std::string name() const = 0;
};

/** YCSB-like GET/SET parameters. */
struct YcsbConfig
{
    std::uint64_t keyCount = 20000;
    double updateRatio = 1.0;
    std::size_t valueSize = 100;
    double zipfTheta = 0.99;
    /** Preloaded fraction of the key space. */
    double populateFraction = 1.0;
};

/** Retwis parameters. */
struct RetwisConfig
{
    std::uint32_t userCount = 500;
    double updateRatio = 1.0; ///< posts/follows vs timeline reads
    std::size_t postSize = 100;
    /**
     * Fan posts out to followers' timelines (SMEMBERS read followed
     * by per-follower LPUSHes). Off by default to keep the Fig 19
     * "100% update" point update-only, as the paper's adaptation
     * does.
     */
    bool followerFanout = false;
    /** Max follower timelines written per post when fanning out. */
    std::uint32_t fanoutCap = 5;
};

/** Simplified TPC-C parameters. */
struct TpccConfig
{
    std::uint32_t warehouses = 8;
    std::uint32_t districtsPerWarehouse = 10;
    std::uint32_t itemsPerWarehouse = 200;
    std::uint32_t linesPerOrder = 10;
    double updateRatio = 1.0; ///< update txns vs read queries
    /** Mix among update transactions (normalized internally). */
    double newOrderWeight = 0.88;
    double paymentWeight = 0.08;
    double deliveryWeight = 0.04;
};

std::unique_ptr<Workload> makeYcsbWorkload(YcsbConfig config,
                                           std::uint16_t session);

/**
 * Standard YCSB core-workload presets over the same GET/SET driver:
 *   A 50/50 update/read, B 5/95, C read-only,
 *   F read-modify-write (GET followed by SET of the same key).
 * (D and E need latest-distribution/scans, which the paper's driver
 * does not use either.)
 */
std::unique_ptr<Workload> makeYcsbPreset(char preset,
                                         std::uint16_t session,
                                         std::uint64_t key_count = 20000);
std::unique_ptr<Workload> makeRetwisWorkload(RetwisConfig config,
                                             std::uint16_t session);
std::unique_ptr<Workload> makeTpccWorkload(TpccConfig config,
                                           std::uint16_t session);

} // namespace pmnet::apps

#endif // PMNET_APPS_WORKLOADS_H
