/**
 * @file
 * The server-side command store: a Redis-like command interpreter over
 * any of the five persistent KV structures.
 *
 * This is the reproduction of the paper's server workloads:
 *  - the PMDK workloads (Fig 19: B-Tree, C-Tree, RB-Tree, Hashmap,
 *    Skip List) are CommandStore instances whose backing structure is
 *    the respective KvStore kind, driven by the YCSB-like GET/SET mix;
 *  - "Redis" is a CommandStore over the hashmap with the richer
 *    command set (INCR, lists, sets, hashes) used by the Twitter
 *    workload;
 *  - the TPCC lock primitive (Section III-C) is the LOCK/UNLOCK
 *    command pair, enforced here with session ownership.
 *
 * Values are typed ('S' string, 'L' list, 'T' set, 'H' hash); GET only
 * serves strings and returns the raw SET payload so a switch-cached
 * value and a server-served value are byte-identical.
 *
 * Lists are capped at kListCap elements (Retwis-style LTRIM), keeping
 * timeline entries bounded like the original workload does.
 */

#ifndef PMNET_APPS_COMMAND_STORE_H
#define PMNET_APPS_COMMAND_STORE_H

#include <memory>

#include "apps/kv_protocol.h"
#include "kv/kv_store.h"

namespace pmnet::apps {

/** Redis-like command interpreter over a persistent KV structure. */
class CommandStore
{
  public:
    static constexpr std::size_t kListCap = 128;

    /** Create a fresh store backed by @p kind. */
    CommandStore(pm::PmHeap &heap, kv::KvKind kind);

    /** Re-open from the persistent root after a crash. */
    CommandStore(pm::PmHeap &heap, pm::PmOffset root);

    /** Persistent handle (the backing store's header offset). */
    pm::PmOffset persistentRoot() const;

    /** Result of one command. */
    struct Result
    {
        RespStatus status = RespStatus::Ok;
        std::string value;
        /** Set (to the key) for cacheable GET responses. */
        std::string cacheKey;
    };

    /**
     * Execute @p cmd on behalf of @p session (sessions own locks).
     * All persistence happens through the backing structure; the
     * heap's accrued cost reflects the simulated service time.
     */
    Result execute(const Command &cmd, std::uint16_t session);

    /** execute() + protocol encoding. */
    Bytes executeToResponse(const Command &cmd, std::uint16_t session);

    kv::KvStore &backing() { return *store_; }

  private:
    static std::string typed(char type, const std::string &raw);

    Result doGet(const Command &cmd);
    Result doSet(const Command &cmd);
    Result doDel(const Command &cmd);
    Result doExists(const Command &cmd);
    Result doIncr(const Command &cmd, std::int64_t by);
    Result doAppend(const Command &cmd);
    Result doCas(const Command &cmd);
    Result doPush(const Command &cmd, bool front);
    Result doLpop(const Command &cmd);
    Result doLrange(const Command &cmd);
    Result doLlen(const Command &cmd);
    Result doSadd(const Command &cmd);
    Result doSrem(const Command &cmd);
    Result doSismember(const Command &cmd);
    Result doSmembers(const Command &cmd);
    Result doScard(const Command &cmd);
    Result doHset(const Command &cmd);
    Result doHget(const Command &cmd);
    Result doHdel(const Command &cmd);
    Result doLock(const Command &cmd, std::uint16_t session);
    Result doUnlock(const Command &cmd, std::uint16_t session);

    /**
     * Load a typed value; empty optional when absent. Takes a KeyRef
     * so each command hashes its key exactly once, no matter how many
     * load/store round-trips it performs.
     */
    std::optional<std::string> load(KeyRef key);
    void storeValue(KeyRef key, const std::string &typed);

    std::vector<std::string> loadList(const std::string &raw) const;
    std::string encodeList(const std::vector<std::string> &items,
                           char type) const;

    pm::PmHeap &heap_;
    std::unique_ptr<kv::KvStore> store_;
};

} // namespace pmnet::apps

#endif // PMNET_APPS_COMMAND_STORE_H
