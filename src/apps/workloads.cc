#include "apps/workloads.h"

#include "common/logging.h"

namespace pmnet::apps {

namespace {

std::string
paddedValue(std::size_t size, std::uint64_t salt)
{
    std::string value = "v" + std::to_string(salt) + ":";
    if (value.size() < size)
        value.append(size - value.size(), 'x');
    return value;
}

// ------------------------------------------------------------- YCSB

class YcsbWorkload : public Workload
{
  public:
    YcsbWorkload(YcsbConfig config, std::uint16_t session,
                 bool read_modify_write = false)
        : config_(config), session_(session),
          readModifyWrite_(read_modify_write),
          zipf_(config.keyCount, config.zipfTheta)
    {
    }

    std::string
    keyAt(std::uint64_t index) const
    {
        return "user" + std::to_string(index);
    }

    std::vector<Command>
    nextTransaction(Rng &rng) override
    {
        std::string key = keyAt(zipf_.next(rng));
        if (rng.nextBool(config_.updateRatio)) {
            Command set{{"SET", key,
                         paddedValue(config_.valueSize, rng())}};
            if (readModifyWrite_) {
                // YCSB-F: read the record, then write it back.
                return {Command{{"GET", key}}, std::move(set)};
            }
            return {std::move(set)};
        }
        return {Command{{"GET", key}}};
    }

    void
    populate(CommandStore &store, Rng &rng) override
    {
        std::uint64_t count = static_cast<std::uint64_t>(
            config_.populateFraction *
            static_cast<double>(config_.keyCount));
        for (std::uint64_t i = 0; i < count; i++) {
            store.execute(Command{{"SET", keyAt(i),
                                   paddedValue(config_.valueSize,
                                               rng())}},
                          session_);
        }
    }

    std::string name() const override { return "ycsb"; }

  private:
    YcsbConfig config_;
    std::uint16_t session_;
    bool readModifyWrite_;
    ZipfianGenerator zipf_;
};

// ----------------------------------------------------------- Retwis

class RetwisWorkload : public Workload
{
  public:
    RetwisWorkload(RetwisConfig config, std::uint16_t session)
        : config_(config), session_(session)
    {
    }

    std::vector<Command>
    nextTransaction(Rng &rng) override
    {
        std::uint32_t user =
            static_cast<std::uint32_t>(rng.nextUInt(config_.userCount));
        std::string user_key = "user:" + std::to_string(user);

        if (!rng.nextBool(config_.updateRatio)) {
            // Read the home timeline (Fig 4's read side).
            return {Command{
                {"LRANGE", "timeline:" + std::to_string(user), "0",
                 "9"}}};
        }

        if (rng.nextBool(0.8)) {
            // Post a tweet. Post IDs are client-unique (session +
            // local counter): the paper's point is exactly that no
            // cross-client ordering is required here.
            std::string post_id = std::to_string(session_) + ":" +
                                  std::to_string(nextPost_++);
            std::vector<Command> txn = {
                Command{{"SET", "post:" + post_id,
                         paddedValue(config_.postSize, nextPost_)}},
                Command{{"LPUSH", "timeline:" + std::to_string(user),
                         post_id}},
                Command{{"LPUSH", "timeline:global", post_id}},
            };
            if (config_.followerFanout) {
                // Real Retwis fans the post out to follower
                // timelines: read the follower set, then push to a
                // bounded number of them.
                txn.insert(txn.begin(),
                           Command{{"SMEMBERS",
                                    "followers:" +
                                        std::to_string(user)}});
                for (std::uint32_t f = 0; f < config_.fanoutCap; f++) {
                    std::uint32_t follower = static_cast<std::uint32_t>(
                        rng.nextUInt(config_.userCount));
                    txn.push_back(Command{
                        {"LPUSH",
                         "timeline:" + std::to_string(follower),
                         post_id}});
                }
            }
            return txn;
        }
        // Follow another user.
        std::uint32_t target =
            static_cast<std::uint32_t>(rng.nextUInt(config_.userCount));
        return {Command{{"SADD",
                         "followers:" + std::to_string(target),
                         std::to_string(user)}}};
    }

    void
    populate(CommandStore &store, Rng &rng) override
    {
        for (std::uint32_t user = 0; user < config_.userCount; user++) {
            store.execute(Command{{"SET",
                                   "user:" + std::to_string(user),
                                   "name" + std::to_string(user)}},
                          session_);
            // A seed post so timeline reads hit something.
            std::string post_id = "seed:" + std::to_string(user);
            store.execute(Command{{"SET", "post:" + post_id,
                                   paddedValue(config_.postSize,
                                               rng())}},
                          session_);
            store.execute(Command{{"LPUSH",
                                   "timeline:" + std::to_string(user),
                                   post_id}},
                          session_);
        }
    }

    std::string name() const override { return "twitter"; }

  private:
    RetwisConfig config_;
    std::uint16_t session_;
    std::uint64_t nextPost_ = 1;
};

// ------------------------------------------------------------- TPCC

class TpccWorkload : public Workload
{
  public:
    TpccWorkload(TpccConfig config, std::uint16_t session)
        : config_(config), session_(session)
    {
    }

    std::vector<Command>
    nextTransaction(Rng &rng) override
    {
        std::uint32_t warehouse =
            static_cast<std::uint32_t>(rng.nextUInt(config_.warehouses));

        if (!rng.nextBool(config_.updateRatio)) {
            // Read-only queries: Stock-Level (stock GET) or
            // Order-Status (customer record HGET).
            if (rng.nextBool(0.5)) {
                std::uint32_t item = static_cast<std::uint32_t>(
                    rng.nextUInt(config_.itemsPerWarehouse));
                return {Command{{"GET", stockKey(warehouse, item)}}};
            }
            return {Command{{"HGET", "c:" + std::to_string(warehouse),
                             "payment:1"}}};
        }

        double total = config_.newOrderWeight + config_.paymentWeight +
                       config_.deliveryWeight;
        double draw = rng.nextDouble() * total;
        if (draw < config_.newOrderWeight)
            return newOrder(warehouse, rng);
        if (draw < config_.newOrderWeight + config_.paymentWeight)
            return payment(warehouse, rng);
        return delivery(warehouse, rng);
    }

    void
    populate(CommandStore &store, Rng &rng) override
    {
        (void)rng;
        for (std::uint32_t w = 0; w < config_.warehouses; w++) {
            store.execute(Command{{"SET", warehouseKey(w), "0"}},
                          session_);
            for (std::uint32_t d = 0;
                 d < config_.districtsPerWarehouse; d++) {
                store.execute(Command{{"SET", districtKey(w, d), "1"}},
                              session_);
            }
            for (std::uint32_t i = 0; i < config_.itemsPerWarehouse;
                 i++) {
                store.execute(Command{{"SET", stockKey(w, i), "100"}},
                              session_);
            }
        }
    }

    std::string name() const override { return "tpcc"; }

  private:
    std::string
    warehouseKey(std::uint32_t w) const
    {
        return "w:" + std::to_string(w) + ":ytd";
    }

    std::string
    districtKey(std::uint32_t w, std::uint32_t d) const
    {
        return "d:" + std::to_string(w) + ":" + std::to_string(d);
    }

    std::string
    stockKey(std::uint32_t w, std::uint32_t i) const
    {
        return "s:" + std::to_string(w) + ":" + std::to_string(i);
    }

    /**
     * New-Order (Fig 5): the district's next_o_id mutation sits in a
     * critical section; the stock updates and the order insert are
     * ordinary updates that PMNet logs. ~2 of 14 requests are lock
     * traffic (the paper measures 13.7%).
     */
    std::vector<Command>
    newOrder(std::uint32_t warehouse, Rng &rng)
    {
        std::uint32_t district = static_cast<std::uint32_t>(
            rng.nextUInt(config_.districtsPerWarehouse));
        std::string dkey = districtKey(warehouse, district);
        std::string order_id = std::to_string(session_) + ":" +
                               std::to_string(nextOrder_++);

        std::vector<Command> txn;
        txn.push_back(Command{{"LOCK", dkey}});
        txn.push_back(Command{{"INCR", dkey + ":next_o_id"}});
        for (std::uint32_t l = 0; l < config_.linesPerOrder; l++) {
            std::uint32_t item = static_cast<std::uint32_t>(
                rng.nextUInt(config_.itemsPerWarehouse));
            txn.push_back(Command{
                {"INCRBY", stockKey(warehouse, item), "-1"}});
        }
        txn.push_back(Command{
            {"SET", "o:" + order_id,
             "w" + std::to_string(warehouse) + ";d" +
                 std::to_string(district)}});
        txn.push_back(Command{{"UNLOCK", dkey}});
        return txn;
    }

    /**
     * Delivery: marks the oldest order of a district delivered and
     * credits the customer, inside the district's critical section.
     */
    std::vector<Command>
    delivery(std::uint32_t warehouse, Rng &rng)
    {
        std::uint32_t district = static_cast<std::uint32_t>(
            rng.nextUInt(config_.districtsPerWarehouse));
        std::string dkey = districtKey(warehouse, district);
        return {
            Command{{"LOCK", dkey}},
            Command{{"HSET", "c:" + std::to_string(warehouse),
                     "delivered:" + std::to_string(nextDelivery_++),
                     "carrier"}},
            Command{{"INCRBY",
                     "d:" + std::to_string(warehouse) + ":" +
                         std::to_string(district) + ":delivered",
                     "1"}},
            Command{{"UNLOCK", dkey}},
        };
    }

    /** Payment: warehouse YTD mutation in a critical section. */
    std::vector<Command>
    payment(std::uint32_t warehouse, Rng &rng)
    {
        std::string wkey = warehouseKey(warehouse);
        std::uint32_t amount =
            static_cast<std::uint32_t>(rng.nextUInt(5000)) + 1;
        return {
            Command{{"LOCK", wkey}},
            Command{{"INCRBY", wkey, std::to_string(amount)}},
            Command{{"HSET", "c:" + std::to_string(warehouse),
                     "payment:" + std::to_string(nextPayment_++),
                     std::to_string(amount)}},
            Command{{"UNLOCK", wkey}},
        };
    }

    TpccConfig config_;
    std::uint16_t session_;
    std::uint64_t nextOrder_ = 1;
    std::uint64_t nextPayment_ = 1;
    std::uint64_t nextDelivery_ = 1;
};

} // namespace

void
Workload::populate(CommandStore &store, Rng &rng)
{
    (void)store;
    (void)rng;
}

std::unique_ptr<Workload>
makeYcsbWorkload(YcsbConfig config, std::uint16_t session)
{
    return std::make_unique<YcsbWorkload>(config, session);
}

std::unique_ptr<Workload>
makeYcsbPreset(char preset, std::uint16_t session,
               std::uint64_t key_count)
{
    YcsbConfig config;
    config.keyCount = key_count;
    bool rmw = false;
    switch (preset) {
      case 'A':
      case 'a':
        config.updateRatio = 0.5;
        break;
      case 'B':
      case 'b':
        config.updateRatio = 0.05;
        break;
      case 'C':
      case 'c':
        config.updateRatio = 0.0;
        break;
      case 'F':
      case 'f':
        config.updateRatio = 1.0;
        rmw = true;
        break;
      default:
        fatal("makeYcsbPreset: unsupported preset '%c' (A/B/C/F)",
              preset);
    }
    return std::make_unique<YcsbWorkload>(config, session, rmw);
}

std::unique_ptr<Workload>
makeRetwisWorkload(RetwisConfig config, std::uint16_t session)
{
    return std::make_unique<RetwisWorkload>(config, session);
}

std::unique_ptr<Workload>
makeTpccWorkload(TpccConfig config, std::uint16_t session)
{
    return std::make_unique<TpccWorkload>(config, session);
}

} // namespace pmnet::apps
