#include "apps/command_store.h"

#include <algorithm>

#include "common/logging.h"

namespace pmnet::apps {

namespace {

Bytes
toBytes(const std::string &text)
{
    return Bytes(text.begin(), text.end());
}

std::string
toString(const Bytes &bytes)
{
    return std::string(bytes.begin(), bytes.end());
}

/** The command's key argument, hashed once for the whole command. */
KeyRef
keyArg(const Command &cmd)
{
    return KeyRef(std::string_view(cmd.args[1]));
}

} // namespace

CommandStore::CommandStore(pm::PmHeap &heap, kv::KvKind kind)
    : heap_(heap), store_(kv::makeKvStore(kind, heap))
{
}

CommandStore::CommandStore(pm::PmHeap &heap, pm::PmOffset root)
    : heap_(heap), store_(kv::openKvStore(heap, root))
{
}

pm::PmOffset
CommandStore::persistentRoot() const
{
    return store_->headerOffset();
}

std::string
CommandStore::typed(char type, const std::string &raw)
{
    std::string out;
    out.reserve(raw.size() + 1);
    out.push_back(type);
    out.append(raw);
    return out;
}

std::optional<std::string>
CommandStore::load(KeyRef key)
{
    auto raw = store_->get(key);
    if (!raw)
        return std::nullopt;
    return toString(*raw);
}

void
CommandStore::storeValue(KeyRef key, const std::string &value)
{
    store_->put(key, toBytes(value));
}

std::vector<std::string>
CommandStore::loadList(const std::string &raw) const
{
    // raw excludes the type byte.
    Bytes bytes = toBytes(raw);
    ByteReader reader(bytes);
    std::uint32_t count = reader.readU32();
    std::vector<std::string> items;
    items.reserve(count);
    for (std::uint32_t i = 0; i < count && reader.ok(); i++)
        items.push_back(reader.readString());
    return items;
}

std::string
CommandStore::encodeList(const std::vector<std::string> &items,
                         char type) const
{
    Bytes body;
    ByteWriter writer(body);
    writer.writeU32(static_cast<std::uint32_t>(items.size()));
    for (const std::string &item : items)
        writer.writeString(item);
    return typed(type, toString(body));
}

CommandStore::Result
CommandStore::execute(const Command &cmd, std::uint16_t session)
{
    if (cmd.args.empty())
        return {RespStatus::Error, "empty command", ""};
    const std::string &verb = cmd.verb();

    if (verb == "GET")
        return doGet(cmd);
    if (verb == "SET")
        return doSet(cmd);
    if (verb == "DEL")
        return doDel(cmd);
    if (verb == "EXISTS")
        return doExists(cmd);
    if (verb == "INCR")
        return doIncr(cmd, 1);
    if (verb == "INCRBY") {
        if (cmd.args.size() != 3)
            return {RespStatus::Error, "INCRBY arity", ""};
        return doIncr(cmd, std::atoll(cmd.args[2].c_str()));
    }
    if (verb == "APPEND")
        return doAppend(cmd);
    if (verb == "CAS")
        return doCas(cmd);
    if (verb == "LPUSH")
        return doPush(cmd, true);
    if (verb == "RPUSH")
        return doPush(cmd, false);
    if (verb == "LPOP")
        return doLpop(cmd);
    if (verb == "LRANGE")
        return doLrange(cmd);
    if (verb == "LLEN")
        return doLlen(cmd);
    if (verb == "SADD")
        return doSadd(cmd);
    if (verb == "SREM")
        return doSrem(cmd);
    if (verb == "SISMEMBER")
        return doSismember(cmd);
    if (verb == "SMEMBERS")
        return doSmembers(cmd);
    if (verb == "SCARD")
        return doScard(cmd);
    if (verb == "HSET")
        return doHset(cmd);
    if (verb == "HGET")
        return doHget(cmd);
    if (verb == "HDEL")
        return doHdel(cmd);
    if (verb == "LOCK")
        return doLock(cmd, session);
    if (verb == "UNLOCK")
        return doUnlock(cmd, session);
    return {RespStatus::Error, "unknown command " + verb, ""};
}

Bytes
CommandStore::executeToResponse(const Command &cmd, std::uint16_t session)
{
    Result result = execute(cmd, session);
    if (!result.cacheKey.empty())
        return encodeGetResponse(result.status, result.cacheKey,
                                 result.value);
    return encodeResponse(result.status, result.value);
}

CommandStore::Result
CommandStore::doGet(const Command &cmd)
{
    if (cmd.args.size() != 2)
        return {RespStatus::Error, "GET arity", ""};
    auto value = load(keyArg(cmd));
    if (!value)
        return {RespStatus::Nil, "", cmd.args[1]};
    if (value->empty() || (*value)[0] != 'S')
        return {RespStatus::Error, "WRONGTYPE", ""};
    return {RespStatus::Ok, value->substr(1), cmd.args[1]};
}

CommandStore::Result
CommandStore::doSet(const Command &cmd)
{
    if (cmd.args.size() != 3)
        return {RespStatus::Error, "SET arity", ""};
    storeValue(keyArg(cmd), typed('S', cmd.args[2]));
    return {RespStatus::Ok, "OK", ""};
}

CommandStore::Result
CommandStore::doDel(const Command &cmd)
{
    if (cmd.args.size() != 2)
        return {RespStatus::Error, "DEL arity", ""};
    bool erased = store_->erase(keyArg(cmd));
    return {RespStatus::Ok, erased ? "1" : "0", ""};
}

CommandStore::Result
CommandStore::doExists(const Command &cmd)
{
    if (cmd.args.size() != 2)
        return {RespStatus::Error, "EXISTS arity", ""};
    return {RespStatus::Ok, load(keyArg(cmd)) ? "1" : "0", ""};
}

CommandStore::Result
CommandStore::doIncr(const Command &cmd, std::int64_t by)
{
    if (cmd.args.size() < 2)
        return {RespStatus::Error, "INCR arity", ""};
    KeyRef key = keyArg(cmd);
    std::int64_t current = 0;
    if (auto value = load(key)) {
        if (value->empty() || (*value)[0] != 'S')
            return {RespStatus::Error, "WRONGTYPE", ""};
        current = std::atoll(value->c_str() + 1);
    }
    current += by;
    std::string text = std::to_string(current);
    storeValue(key, typed('S', text));
    return {RespStatus::Ok, text, ""};
}

CommandStore::Result
CommandStore::doAppend(const Command &cmd)
{
    if (cmd.args.size() != 3)
        return {RespStatus::Error, "APPEND arity", ""};
    KeyRef key = keyArg(cmd);
    std::string text;
    if (auto value = load(key)) {
        if (value->empty() || (*value)[0] != 'S')
            return {RespStatus::Error, "WRONGTYPE", ""};
        text = value->substr(1);
    }
    text.append(cmd.args[2]);
    storeValue(key, typed('S', text));
    return {RespStatus::Ok, text, ""};
}

CommandStore::Result
CommandStore::doCas(const Command &cmd)
{
    // CAS key expected new: write only when the current value equals
    // `expected`. Ok carries the new value on success; a mismatch is
    // reported as Error carrying the current value (no write); Nil
    // when the key is absent. KvCacheCodec::applyNearData mirrors
    // these semantics byte-for-byte for the in-network path.
    if (cmd.args.size() != 4)
        return {RespStatus::Error, "CAS arity", ""};
    KeyRef key = keyArg(cmd);
    auto value = load(key);
    if (!value)
        return {RespStatus::Nil, "", ""};
    if (value->empty() || (*value)[0] != 'S')
        return {RespStatus::Error, "WRONGTYPE", ""};
    std::string current = value->substr(1);
    if (current != cmd.args[2])
        return {RespStatus::Error, current, ""};
    storeValue(key, typed('S', cmd.args[3]));
    return {RespStatus::Ok, cmd.args[3], ""};
}

CommandStore::Result
CommandStore::doPush(const Command &cmd, bool front)
{
    if (cmd.args.size() != 3)
        return {RespStatus::Error, "PUSH arity", ""};
    KeyRef key = keyArg(cmd);
    std::vector<std::string> items;
    if (auto value = load(key)) {
        if (value->empty() || (*value)[0] != 'L')
            return {RespStatus::Error, "WRONGTYPE", ""};
        items = loadList(value->substr(1));
    }
    if (front)
        items.insert(items.begin(), cmd.args[2]);
    else
        items.push_back(cmd.args[2]);
    // Retwis-style trim keeps timelines bounded.
    if (items.size() > kListCap) {
        if (front)
            items.resize(kListCap);
        else
            items.erase(items.begin(),
                        items.begin() +
                            static_cast<long>(items.size() - kListCap));
    }
    storeValue(key, encodeList(items, 'L'));
    return {RespStatus::Ok, std::to_string(items.size()), ""};
}

CommandStore::Result
CommandStore::doLpop(const Command &cmd)
{
    if (cmd.args.size() != 2)
        return {RespStatus::Error, "LPOP arity", ""};
    KeyRef key = keyArg(cmd);
    auto value = load(key);
    if (!value)
        return {RespStatus::Nil, "", ""};
    if (value->empty() || (*value)[0] != 'L')
        return {RespStatus::Error, "WRONGTYPE", ""};
    auto items = loadList(value->substr(1));
    if (items.empty())
        return {RespStatus::Nil, "", ""};
    std::string popped = items.front();
    items.erase(items.begin());
    storeValue(key, encodeList(items, 'L'));
    return {RespStatus::Ok, popped, ""};
}

CommandStore::Result
CommandStore::doLrange(const Command &cmd)
{
    if (cmd.args.size() != 4)
        return {RespStatus::Error, "LRANGE arity", ""};
    auto value = load(keyArg(cmd));
    if (!value)
        return {RespStatus::Nil, "", ""};
    if (value->empty() || (*value)[0] != 'L')
        return {RespStatus::Error, "WRONGTYPE", ""};
    auto items = loadList(value->substr(1));
    long start = std::atol(cmd.args[2].c_str());
    long stop = std::atol(cmd.args[3].c_str());
    long n = static_cast<long>(items.size());
    if (start < 0)
        start += n;
    if (stop < 0)
        stop += n;
    start = std::max(0L, start);
    stop = std::min(n - 1, stop);
    std::string joined;
    for (long i = start; i <= stop; i++) {
        if (!joined.empty())
            joined.push_back('\n');
        joined.append(items[static_cast<std::size_t>(i)]);
    }
    return {RespStatus::Ok, joined, ""};
}

CommandStore::Result
CommandStore::doLlen(const Command &cmd)
{
    if (cmd.args.size() != 2)
        return {RespStatus::Error, "LLEN arity", ""};
    auto value = load(keyArg(cmd));
    if (!value)
        return {RespStatus::Ok, "0", ""};
    if (value->empty() || (*value)[0] != 'L')
        return {RespStatus::Error, "WRONGTYPE", ""};
    return {RespStatus::Ok,
            std::to_string(loadList(value->substr(1)).size()), ""};
}

CommandStore::Result
CommandStore::doSadd(const Command &cmd)
{
    if (cmd.args.size() != 3)
        return {RespStatus::Error, "SADD arity", ""};
    KeyRef key = keyArg(cmd);
    std::vector<std::string> items;
    if (auto value = load(key)) {
        if (value->empty() || (*value)[0] != 'T')
            return {RespStatus::Error, "WRONGTYPE", ""};
        items = loadList(value->substr(1));
    }
    if (std::find(items.begin(), items.end(), cmd.args[2]) !=
        items.end())
        return {RespStatus::Ok, "0", ""};
    items.push_back(cmd.args[2]);
    storeValue(key, encodeList(items, 'T'));
    return {RespStatus::Ok, "1", ""};
}

CommandStore::Result
CommandStore::doSrem(const Command &cmd)
{
    if (cmd.args.size() != 3)
        return {RespStatus::Error, "SREM arity", ""};
    KeyRef key = keyArg(cmd);
    auto value = load(key);
    if (!value)
        return {RespStatus::Ok, "0", ""};
    if (value->empty() || (*value)[0] != 'T')
        return {RespStatus::Error, "WRONGTYPE", ""};
    auto items = loadList(value->substr(1));
    auto it = std::find(items.begin(), items.end(), cmd.args[2]);
    if (it == items.end())
        return {RespStatus::Ok, "0", ""};
    items.erase(it);
    storeValue(key, encodeList(items, 'T'));
    return {RespStatus::Ok, "1", ""};
}

CommandStore::Result
CommandStore::doSismember(const Command &cmd)
{
    if (cmd.args.size() != 3)
        return {RespStatus::Error, "SISMEMBER arity", ""};
    auto value = load(keyArg(cmd));
    if (!value)
        return {RespStatus::Ok, "0", ""};
    if (value->empty() || (*value)[0] != 'T')
        return {RespStatus::Error, "WRONGTYPE", ""};
    auto items = loadList(value->substr(1));
    bool member = std::find(items.begin(), items.end(), cmd.args[2]) !=
                  items.end();
    return {RespStatus::Ok, member ? "1" : "0", ""};
}

CommandStore::Result
CommandStore::doSmembers(const Command &cmd)
{
    if (cmd.args.size() != 2)
        return {RespStatus::Error, "SMEMBERS arity", ""};
    auto value = load(keyArg(cmd));
    if (!value)
        return {RespStatus::Nil, "", ""};
    if (value->empty() || (*value)[0] != 'T')
        return {RespStatus::Error, "WRONGTYPE", ""};
    auto items = loadList(value->substr(1));
    std::string joined;
    for (const std::string &item : items) {
        if (!joined.empty())
            joined.push_back('\n');
        joined.append(item);
    }
    return {RespStatus::Ok, joined, ""};
}

CommandStore::Result
CommandStore::doScard(const Command &cmd)
{
    if (cmd.args.size() != 2)
        return {RespStatus::Error, "SCARD arity", ""};
    auto value = load(keyArg(cmd));
    if (!value)
        return {RespStatus::Ok, "0", ""};
    if (value->empty() || (*value)[0] != 'T')
        return {RespStatus::Error, "WRONGTYPE", ""};
    return {RespStatus::Ok,
            std::to_string(loadList(value->substr(1)).size()), ""};
}

CommandStore::Result
CommandStore::doHset(const Command &cmd)
{
    if (cmd.args.size() != 4)
        return {RespStatus::Error, "HSET arity", ""};
    KeyRef key = keyArg(cmd);
    std::vector<std::string> pairs; // flattened field,value list
    if (auto value = load(key)) {
        if (value->empty() || (*value)[0] != 'H')
            return {RespStatus::Error, "WRONGTYPE", ""};
        pairs = loadList(value->substr(1));
    }
    bool replaced = false;
    for (std::size_t i = 0; i + 1 < pairs.size(); i += 2) {
        if (pairs[i] == cmd.args[2]) {
            pairs[i + 1] = cmd.args[3];
            replaced = true;
            break;
        }
    }
    if (!replaced) {
        pairs.push_back(cmd.args[2]);
        pairs.push_back(cmd.args[3]);
    }
    storeValue(key, encodeList(pairs, 'H'));
    return {RespStatus::Ok, replaced ? "0" : "1", ""};
}

CommandStore::Result
CommandStore::doHget(const Command &cmd)
{
    if (cmd.args.size() != 3)
        return {RespStatus::Error, "HGET arity", ""};
    auto value = load(keyArg(cmd));
    if (!value)
        return {RespStatus::Nil, "", ""};
    if (value->empty() || (*value)[0] != 'H')
        return {RespStatus::Error, "WRONGTYPE", ""};
    auto pairs = loadList(value->substr(1));
    for (std::size_t i = 0; i + 1 < pairs.size(); i += 2) {
        if (pairs[i] == cmd.args[2])
            return {RespStatus::Ok, pairs[i + 1], ""};
    }
    return {RespStatus::Nil, "", ""};
}

CommandStore::Result
CommandStore::doHdel(const Command &cmd)
{
    if (cmd.args.size() != 3)
        return {RespStatus::Error, "HDEL arity", ""};
    KeyRef key = keyArg(cmd);
    auto value = load(key);
    if (!value)
        return {RespStatus::Ok, "0", ""};
    if (value->empty() || (*value)[0] != 'H')
        return {RespStatus::Error, "WRONGTYPE", ""};
    auto pairs = loadList(value->substr(1));
    for (std::size_t i = 0; i + 1 < pairs.size(); i += 2) {
        if (pairs[i] == cmd.args[2]) {
            pairs.erase(pairs.begin() + static_cast<long>(i),
                        pairs.begin() + static_cast<long>(i) + 2);
            storeValue(key, encodeList(pairs, 'H'));
            return {RespStatus::Ok, "1", ""};
        }
    }
    return {RespStatus::Ok, "0", ""};
}

CommandStore::Result
CommandStore::doLock(const Command &cmd, std::uint16_t session)
{
    if (cmd.args.size() != 2)
        return {RespStatus::Error, "LOCK arity", ""};
    std::string key = "\x02lock:" + cmd.args[1];
    KeyRef lockRef{std::string_view(key)};
    std::string owner = std::to_string(session);
    if (auto value = load(lockRef)) {
        std::string held = value->substr(1);
        if (held != owner)
            return {RespStatus::Locked, held, ""};
        // Re-acquisition by the owner is idempotent (needed when a
        // lock reply is lost across a crash and the client retries).
        return {RespStatus::Ok, "OK", ""};
    }
    storeValue(lockRef, typed('S', owner));
    return {RespStatus::Ok, "OK", ""};
}

CommandStore::Result
CommandStore::doUnlock(const Command &cmd, std::uint16_t session)
{
    if (cmd.args.size() != 2)
        return {RespStatus::Error, "UNLOCK arity", ""};
    std::string key = "\x02lock:" + cmd.args[1];
    KeyRef lockRef{std::string_view(key)};
    std::string owner = std::to_string(session);
    auto value = load(lockRef);
    if (!value)
        return {RespStatus::Ok, "OK", ""}; // already released (retry)
    if (value->substr(1) != owner)
        return {RespStatus::Locked, value->substr(1), ""};
    store_->erase(lockRef);
    return {RespStatus::Ok, "OK", ""};
}

} // namespace pmnet::apps
