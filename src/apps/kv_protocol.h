/**
 * @file
 * Application wire protocol for the KV/Redis-style workloads.
 *
 * Requests are commands — an argv-style vector of strings, e.g.
 * {"SET", "user:1", "alice"} — encoded with length prefixes.
 * Responses carry a status, an echoed key (for GETs, so the in-switch
 * cache can associate the value) and a value.
 *
 * classifyCommand() implements the paper's split: state-changing
 * commands become update-req packets (logged by PMNet), reads and the
 * synchronization primitives (LOCK/UNLOCK, Section III-C) become
 * bypass-req packets.
 *
 * KvCacheCodec adapts this protocol to the device's CacheCodec
 * interface so PMNet-Switch can cache GET/SET traffic (Section IV-D).
 */

#ifndef PMNET_APPS_KV_PROTOCOL_H
#define PMNET_APPS_KV_PROTOCOL_H

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "pmnet/cache_codec.h"

namespace pmnet::apps {

/** An argv-style application command. */
struct Command
{
    std::vector<std::string> args;

    const std::string &verb() const { return args.front(); }
};

/** How a command travels through PMNet. */
enum class CommandClass {
    Update, ///< state-changing: sent as update-req, logged in-network
    Read,   ///< read-only: sent as bypass-req
    Sync,   ///< lock/unlock: bypass-req, ordering enforced at server
};

/** Classify @p verb (GET/SET/LPUSH/LOCK/...). */
CommandClass classifyCommand(const std::string &verb);

/** True for Update-class commands. */
bool commandIsUpdate(const Command &cmd);

/** Encode a command for the wire. */
Bytes encodeCommand(const Command &cmd);

/** Decode a command; nullopt on malformed input. */
std::optional<Command> decodeCommand(const Bytes &wire);

/** Response status codes. */
enum class RespStatus : std::uint8_t {
    Ok = 0,
    Nil = 1,     ///< key/field absent
    Error = 2,   ///< malformed command or type mismatch
    Locked = 3,  ///< lock already held by another session
};

/** A decoded response. */
struct Response
{
    RespStatus status = RespStatus::Ok;
    /** Echoed key; non-empty only for cacheable GET responses. */
    std::string key;
    std::string value;
};

/** Encode a response (generic, not GET-cacheable). */
Bytes encodeResponse(RespStatus status, const std::string &value);

/** Encode a cacheable GET response with its key echo. */
Bytes encodeGetResponse(RespStatus status, const std::string &key,
                        const std::string &value);

/** Decode any response; nullopt on malformed input. */
std::optional<Response> decodeResponse(const Bytes &wire);

/**
 * CacheCodec over this protocol: SET fills, GET probes, GET responses
 * populate (paper Section IV-D: "key lookups using the GET/SET
 * interface").
 *
 * The parsers are zero-copy: they return views into the payload and
 * never materialize a Command, so a cacheable packet costs one key
 * hash and no allocation on the device.
 */
class KvCacheCodec : public pmnetdev::CacheCodec
{
  public:
    std::optional<pmnetdev::ParsedUpdate>
    parseUpdate(const Bytes &payload) const override;

    std::optional<KeyRef>
    parseRead(const Bytes &payload) const override;

    std::optional<pmnetdev::ParsedUpdate>
    parseReadResponse(const Bytes &payload) const override;

    Bytes makeReadResponse(std::string_view key,
                           const Bytes &value) const override;

    /** @name Near-data RMW (INCR/INCRBY/APPEND/CAS at the device)
     * applyNearData mirrors CommandStore's string-command semantics
     * exactly, so a device-computed response is byte-identical to the
     * server's for the same starting value.
     *  @{
     */
    std::optional<KeyRef>
    parseNearData(const Bytes &payload) const override;

    std::optional<NearDataResult>
    applyNearData(const Bytes &payload, const Bytes &value) const override;
    /** @} */
};

/** True for the RMW verbs a NearDataReq can carry. */
bool isNearDataVerb(const std::string &verb);

} // namespace pmnet::apps

#endif // PMNET_APPS_KV_PROTOCOL_H
