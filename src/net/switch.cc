#include "net/switch.h"

#include "common/logging.h"
#include "obs/flight_recorder.h"

namespace pmnet::net {

int
ForwardingNode::routeFor(NodeId dst) const
{
    auto it = routes_.find(dst);
    if (it == routes_.end()) {
        unroutable_++;
        return -1;
    }
    return it->second;
}

void
ForwardingNode::forward(PacketPtr pkt)
{
    int port = routeFor(pkt->dst);
    if (port < 0) {
        debug("%s: no route to %u, dropping %s", name().c_str(), pkt->dst,
              describe(*pkt).c_str());
        return;
    }
    send(port, std::move(pkt));
}

void
BasicSwitch::receive(PacketPtr pkt, int in_port)
{
    (void)in_port;
    forwarded_++;
    if (obs::kTracingCompiledIn && recorder_ && pkt->isPmnet() &&
        (pkt->pmnet->type == PacketType::UpdateReq ||
         pkt->pmnet->type == PacketType::BypassReq))
        recorder_->stampAt(pkt->requestId, obs::Stamp::SwitchIngress,
                           now());
    schedule(forwardLatency_,
             [this, pkt = std::move(pkt)]() { forward(pkt); });
}

} // namespace pmnet::net
