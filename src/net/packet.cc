#include "net/packet.h"

#include <atomic>
#include <mutex>
#include <vector>

#include "common/crc32.h"
#include "common/logging.h"

namespace pmnet::net {

/**
 * Backing store of the pool, shared between the thread-local PacketPool
 * front and every outstanding packet's deleter, so released packets
 * always have a live free-list to return to (or, after the pool front
 * is gone, are deleted on the Impl's destruction path).
 *
 * Lifetime is tracked manually instead of with shared_ptr: every
 * acquisition and release happens on the pool's own thread (the
 * PacketPool contract), so a plain counter of outstanding control
 * blocks avoids two-to-six atomic refcount operations per packet —
 * which would otherwise cost more than the allocation being saved.
 * The control-block deallocation is the last pool touch in a packet's
 * destruction sequence, so `outstandingCtrl` counts control blocks:
 * when the pool front is gone and the count reaches zero, the Impl
 * frees itself.
 */
struct PacketPool::Impl
{
    /** Free-list growth beyond this point just deletes (bounds memory
     *  after a burst); generously above any steady-state in-flight
     *  count seen in the testbed. */
    static constexpr std::size_t kMaxParked = 8192;

    /** Payload capacity worth keeping warm; jumbo one-off buffers are
     *  dropped on release rather than parked. */
    static constexpr std::size_t kMaxKeptPayload = 16 * 1024;

    std::vector<Packet *> free;
    Stats stats;
    bool open = true; ///< false once the PacketPool front is destroyed

    /**
     * Cross-thread release support (PacketPool::enableConcurrent):
     * when armed, every free-list / control-block-arena touch locks
     * `m`. The flag is set before the engine's first window barrier,
     * so every thread that later contends observes it.
     */
    std::atomic<bool> concurrent{false};
    std::mutex m;

    /** Scoped lock engaged only in concurrent mode. */
    struct MaybeLock
    {
        std::mutex *locked = nullptr;

        explicit MaybeLock(Impl *impl)
        {
            if (impl->concurrent.load(std::memory_order_relaxed)) {
                locked = &impl->m;
                locked->lock();
            }
        }

        ~MaybeLock()
        {
            if (locked)
                locked->unlock();
        }
    };

    /**
     * Recycled shared_ptr control blocks. Every pooled packet's
     * control block has the same size (deleter + allocator layout is
     * fixed), so a single size class covers the steady state and the
     * shared_ptr constructor stops hitting operator new entirely.
     */
    std::vector<void *> ctrlFree;
    std::size_t ctrlBlockSize = 0;
    std::uint64_t outstandingCtrl = 0;

    ~Impl()
    {
        for (Packet *p : free)
            delete p;
        for (void *block : ctrlFree)
            ::operator delete(block);
    }

    void *
    ctrlAlloc(std::size_t bytes)
    {
        MaybeLock lock(this);
        outstandingCtrl++;
        if (ctrlBlockSize == 0)
            ctrlBlockSize = bytes;
        if (bytes == ctrlBlockSize && !ctrlFree.empty()) {
            void *block = ctrlFree.back();
            ctrlFree.pop_back();
            return block;
        }
        return ::operator new(bytes);
    }

    void
    ctrlRelease(void *block, std::size_t bytes)
    {
        bool self_destruct = false;
        {
            MaybeLock lock(this);
            outstandingCtrl--;
            if (open && bytes == ctrlBlockSize &&
                ctrlFree.size() < kMaxParked) {
                ctrlFree.push_back(block);
                return;
            }
            // Last straggler packet gone: self-destruct — but only
            // after the lock is released.
            self_destruct = !open && outstandingCtrl == 0;
        }
        ::operator delete(block);
        if (self_destruct)
            delete this;
    }

    void
    release(Packet *pkt)
    {
        MaybeLock lock(this);
        stats.released++;
        if (!open || free.size() >= kMaxParked ||
            pkt->payload.capacity() > kMaxKeptPayload) {
            delete pkt;
            return;
        }
        // Scrub to the default-constructed state so no header or
        // payload bytes leak into the next acquisition.
        pkt->src = kInvalidNode;
        pkt->dst = kInvalidNode;
        pkt->srcPort = 0;
        pkt->dstPort = 0;
        pkt->pmnet.reset();
        pkt->payload.clear(); // keeps capacity warm
        pkt->requestId = 0;
        pkt->fragment = 0;
        pkt->fragmentCount = 1;
        free.push_back(pkt);
    }
};

namespace {

/** Refcount-zero hook returning the packet to its pool. */
struct PoolDeleter
{
    PacketPool::Impl *impl;

    void
    operator()(Packet *pkt) const
    {
        impl->release(pkt);
    }
};

/**
 * Allocator handed to the shared_ptr constructor so control blocks
 * come from (and return to) the pool's arena. Holds a raw Impl
 * pointer: the Impl stays alive while any control block it allocated
 * is outstanding (see Impl's lifetime comment), and the standard's
 * deallocation path invokes deallocate as the final act, which is
 * exactly when the Impl may self-destruct.
 */
template <typename T>
struct CtrlArenaAlloc
{
    using value_type = T;

    PacketPool::Impl *impl;

    explicit CtrlArenaAlloc(PacketPool::Impl *i) : impl(i) {}

    template <typename U>
    CtrlArenaAlloc(const CtrlArenaAlloc<U> &other) : impl(other.impl)
    {}

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(impl->ctrlAlloc(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        impl->ctrlRelease(p, n * sizeof(T));
    }

    template <typename U>
    bool
    operator==(const CtrlArenaAlloc<U> &other) const
    {
        return impl == other.impl;
    }
};

} // namespace

PacketPool::PacketPool() : impl_(new Impl) {}

PacketPool::~PacketPool()
{
    bool destroy;
    {
        Impl::MaybeLock lock(impl_);
        impl_->open = false;
        destroy = impl_->outstandingCtrl == 0;
    }
    // Packets still in flight: the Impl lingers (closed) and deletes
    // itself when the last control block is returned.
    if (destroy)
        delete impl_;
}

PacketPool &
PacketPool::local()
{
    static thread_local PacketPool pool;
    return pool;
}

void
PacketPool::enableConcurrent()
{
    impl_->concurrent.store(true, std::memory_order_release);
}

MutPacketPtr
PacketPool::acquire()
{
    Packet *pkt;
    {
        Impl::MaybeLock lock(impl_);
        if (!impl_->free.empty()) {
            pkt = impl_->free.back();
            impl_->free.pop_back();
            impl_->stats.reused++;
        } else {
            pkt = new Packet;
            impl_->stats.allocated++;
        }
    }
    return MutPacketPtr(pkt, PoolDeleter{impl_},
                        CtrlArenaAlloc<Packet>(impl_));
}

void
PacketPool::registerMetrics(obs::MetricRegistry &registry,
                            std::string_view prefix)
{
    std::string base(prefix);
    registry.attach(base + ".allocated", impl_->stats.allocated);
    registry.attach(base + ".reused", impl_->stats.reused);
    registry.attach(base + ".released", impl_->stats.released);
    registry.probe(base + ".parked", [this]() {
        return obs::Json(static_cast<std::uint64_t>(freeCount()));
    });
}

std::size_t
PacketPool::freeCount() const
{
    Impl::MaybeLock lock(impl_);
    return impl_->free.size();
}

void
PacketPool::trim()
{
    Impl::MaybeLock lock(impl_);
    for (Packet *p : impl_->free)
        delete p;
    impl_->free.clear();
}

MutPacketPtr
makePacket()
{
    return PacketPool::local().acquire();
}

const char *
packetTypeName(PacketType type)
{
    switch (type) {
      case PacketType::UpdateReq: return "update-req";
      case PacketType::BypassReq: return "bypass-req";
      case PacketType::PmnetAck: return "pmnet-ack";
      case PacketType::ServerAck: return "server-ack";
      case PacketType::Retrans: return "retrans";
      case PacketType::Response: return "response";
      case PacketType::RecoveryPoll: return "recovery-poll";
      case PacketType::Heartbeat: return "heartbeat";
      case PacketType::HeartbeatAck: return "heartbeat-ack";
      case PacketType::NearDataReq: return "near-data-req";
      case PacketType::ResilverPush: return "resilver-push";
    }
    return "unknown";
}

namespace {

inline void
storeLe16(std::uint8_t *out, std::uint16_t v)
{
    out[0] = static_cast<std::uint8_t>(v);
    out[1] = static_cast<std::uint8_t>(v >> 8);
}

inline void
storeLe32(std::uint8_t *out, std::uint32_t v)
{
    out[0] = static_cast<std::uint8_t>(v);
    out[1] = static_cast<std::uint8_t>(v >> 8);
    out[2] = static_cast<std::uint8_t>(v >> 16);
    out[3] = static_cast<std::uint8_t>(v >> 24);
}

} // namespace

PmnetHeader::WireBytes
PmnetHeader::encode() const
{
    WireBytes out;
    out[0] = static_cast<std::uint8_t>(type);
    storeLe16(&out[1], sessionId);
    storeLe32(&out[3], seqNum);
    storeLe32(&out[7], hashVal);
    return out;
}

void
PmnetHeader::serialize(Bytes &out) const
{
    WireBytes wire = encode();
    out.insert(out.end(), wire.begin(), wire.end());
}

namespace {

inline std::uint16_t
loadLe16(const std::uint8_t *in)
{
    return static_cast<std::uint16_t>(in[0] | (in[1] << 8));
}

inline std::uint32_t
loadLe32(const std::uint8_t *in)
{
    return static_cast<std::uint32_t>(in[0]) |
           (static_cast<std::uint32_t>(in[1]) << 8) |
           (static_cast<std::uint32_t>(in[2]) << 16) |
           (static_cast<std::uint32_t>(in[3]) << 24);
}

} // namespace

bool
PmnetHeader::parse(const std::uint8_t *data, std::size_t len,
                   PmnetHeader &out)
{
    if (len < kWireSize)
        return false;
    std::uint8_t raw_type = data[0];
    if (raw_type < 1 ||
        raw_type > static_cast<std::uint8_t>(PacketType::ResilverPush)) {
        return false;
    }
    out.type = static_cast<PacketType>(raw_type);
    out.sessionId = loadLe16(data + 1);
    out.seqNum = loadLe32(data + 3);
    out.hashVal = loadLe32(data + 7);
    return true;
}

std::optional<PmnetHeader>
PmnetHeader::parse(ByteReader &reader)
{
    PmnetHeader header;
    if (!parse(reader.peek(), reader.remaining(), header))
        return std::nullopt;
    reader.skip(kWireSize);
    return header;
}

std::uint32_t
PmnetHeader::computeHash(PacketType type, std::uint16_t session_id,
                         std::uint32_t seq_num, NodeId src, NodeId dst)
{
    // Explicit little-endian stores, so the HashVal — which doubles as
    // the device's log-store index — is identical on any host
    // endianness or compiler (a packed host-order struct would flip
    // the hashed bytes on big-endian). Golden values are pinned in
    // tests/test_net.cc.
    std::array<std::uint8_t, 15> fields;
    fields[0] = static_cast<std::uint8_t>(type);
    storeLe16(&fields[1], session_id);
    storeLe32(&fields[3], seq_num);
    storeLe32(&fields[7], src);
    storeLe32(&fields[11], dst);
    return crc32(fields.data(), fields.size());
}

std::size_t
Packet::wireSize() const
{
    std::size_t size = kEnvelopeBytes + payload.size();
    if (pmnet)
        size += PmnetHeader::kWireSize;
    return size;
}

std::size_t
Packet::payloadWireSize() const
{
    return (pmnet ? PmnetHeader::kWireSize : 0) + payload.size();
}

Bytes
Packet::serializePayload() const
{
    Bytes out;
    serializePayloadInto(out);
    return out;
}

void
Packet::serializePayloadInto(Bytes &out) const
{
    out.clear();
    out.reserve(payloadWireSize());
    if (pmnet)
        pmnet->serialize(out);
    out.insert(out.end(), payload.begin(), payload.end());
}

bool
Packet::parsePayload(const Bytes &wire)
{
    PmnetHeader header;
    if (!PmnetHeader::parse(wire.data(), wire.size(), header))
        return false;
    pmnet = header;
    // assign() reuses the (possibly pooled) payload buffer's capacity.
    payload.assign(wire.begin() + PmnetHeader::kWireSize, wire.end());
    return true;
}

bool
Packet::verifyHash() const
{
    if (!pmnet)
        return false;
    std::uint32_t expected = PmnetHeader::computeHash(
        pmnet->type, pmnet->sessionId, pmnet->seqNum, src, dst);
    return expected == pmnet->hashVal;
}

MutPacketPtr
makePmnetPacketMut(NodeId src, NodeId dst, PacketType type,
                   std::uint16_t session_id, std::uint32_t seq_num,
                   Bytes payload, std::uint64_t request_id)
{
    MutPacketPtr pkt = PacketPool::local().acquire();
    pkt->src = src;
    pkt->dst = dst;
    pkt->srcPort = kPmnetPortLow;
    pkt->dstPort = kPmnetPortLow;
    PmnetHeader header;
    header.type = type;
    header.sessionId = session_id;
    header.seqNum = seq_num;
    header.hashVal =
        PmnetHeader::computeHash(type, session_id, seq_num, src, dst);
    pkt->pmnet = header;
    pkt->payload = std::move(payload);
    pkt->requestId = request_id;
    return pkt;
}

PacketPtr
makePmnetPacket(NodeId src, NodeId dst, PacketType type,
                std::uint16_t session_id, std::uint32_t seq_num,
                Bytes payload, std::uint64_t request_id)
{
    return makePmnetPacketMut(src, dst, type, session_id, seq_num,
                              std::move(payload), request_id);
}

MutPacketPtr
makeRefPacketMut(NodeId src, NodeId dst, PacketType type,
                 std::uint16_t session_id, std::uint32_t seq_num,
                 std::uint32_t referenced_hash, std::uint64_t request_id)
{
    MutPacketPtr pkt = PacketPool::local().acquire();
    pkt->src = src;
    pkt->dst = dst;
    pkt->srcPort = kPmnetPortLow;
    pkt->dstPort = kPmnetPortLow;
    PmnetHeader header;
    header.type = type;
    header.sessionId = session_id;
    header.seqNum = seq_num;
    header.hashVal = referenced_hash;
    pkt->pmnet = header;
    pkt->requestId = request_id;
    return pkt;
}

PacketPtr
makeRefPacket(NodeId src, NodeId dst, PacketType type,
              std::uint16_t session_id, std::uint32_t seq_num,
              std::uint32_t referenced_hash, std::uint64_t request_id)
{
    return makeRefPacketMut(src, dst, type, session_id, seq_num,
                            referenced_hash, request_id);
}

PacketPtr
makePlainPacket(NodeId src, NodeId dst, Bytes payload,
                std::uint64_t request_id)
{
    MutPacketPtr pkt = PacketPool::local().acquire();
    pkt->src = src;
    pkt->dst = dst;
    pkt->srcPort = 40000;
    pkt->dstPort = 40000;
    pkt->payload = std::move(payload);
    pkt->requestId = request_id;
    return pkt;
}

std::string
describe(const Packet &pkt)
{
    if (!pkt.pmnet) {
        return formatMessage("plain %u->%u %zuB", pkt.src, pkt.dst,
                             pkt.payload.size());
    }
    return formatMessage("%s s%u q%u %u->%u %zuB",
                         packetTypeName(pkt.pmnet->type),
                         pkt.pmnet->sessionId, pkt.pmnet->seqNum, pkt.src,
                         pkt.dst, pkt.payload.size());
}

} // namespace pmnet::net
