#include "net/packet.h"

#include "common/crc32.h"
#include "common/logging.h"

namespace pmnet::net {

const char *
packetTypeName(PacketType type)
{
    switch (type) {
      case PacketType::UpdateReq: return "update-req";
      case PacketType::BypassReq: return "bypass-req";
      case PacketType::PmnetAck: return "pmnet-ack";
      case PacketType::ServerAck: return "server-ack";
      case PacketType::Retrans: return "retrans";
      case PacketType::Response: return "response";
      case PacketType::RecoveryPoll: return "recovery-poll";
      case PacketType::Heartbeat: return "heartbeat";
      case PacketType::HeartbeatAck: return "heartbeat-ack";
    }
    return "unknown";
}

void
PmnetHeader::serialize(Bytes &out) const
{
    ByteWriter writer(out);
    writer.writeU8(static_cast<std::uint8_t>(type));
    writer.writeU16(sessionId);
    writer.writeU32(seqNum);
    writer.writeU32(hashVal);
}

std::optional<PmnetHeader>
PmnetHeader::parse(ByteReader &reader)
{
    PmnetHeader header;
    std::uint8_t raw_type = reader.readU8();
    header.sessionId = reader.readU16();
    header.seqNum = reader.readU32();
    header.hashVal = reader.readU32();
    if (!reader.ok())
        return std::nullopt;
    if (raw_type < 1 ||
        raw_type > static_cast<std::uint8_t>(PacketType::HeartbeatAck)) {
        return std::nullopt;
    }
    header.type = static_cast<PacketType>(raw_type);
    return header;
}

std::uint32_t
PmnetHeader::computeHash(PacketType type, std::uint16_t session_id,
                         std::uint32_t seq_num, NodeId src, NodeId dst)
{
    struct __attribute__((packed))
    {
        std::uint8_t type;
        std::uint16_t session;
        std::uint32_t seq;
        std::uint32_t src;
        std::uint32_t dst;
    } fields{static_cast<std::uint8_t>(type), session_id, seq_num, src,
             dst};
    return crc32(&fields, sizeof(fields));
}

std::size_t
Packet::wireSize() const
{
    std::size_t size = kEnvelopeBytes + payload.size();
    if (pmnet)
        size += PmnetHeader::kWireSize;
    return size;
}

Bytes
Packet::serializePayload() const
{
    Bytes out;
    if (pmnet)
        pmnet->serialize(out);
    ByteWriter writer(out);
    writer.writeBytes(payload.data(), payload.size());
    return out;
}

bool
Packet::parsePayload(const Bytes &wire)
{
    ByteReader reader(wire);
    auto header = PmnetHeader::parse(reader);
    if (!header)
        return false;
    pmnet = *header;
    payload = reader.readBytes(reader.remaining());
    return reader.ok();
}

bool
Packet::verifyHash() const
{
    if (!pmnet)
        return false;
    std::uint32_t expected = PmnetHeader::computeHash(
        pmnet->type, pmnet->sessionId, pmnet->seqNum, src, dst);
    return expected == pmnet->hashVal;
}

PacketPtr
makePmnetPacket(NodeId src, NodeId dst, PacketType type,
                std::uint16_t session_id, std::uint32_t seq_num,
                Bytes payload, std::uint64_t request_id)
{
    auto pkt = std::make_shared<Packet>();
    pkt->src = src;
    pkt->dst = dst;
    pkt->srcPort = kPmnetPortLow;
    pkt->dstPort = kPmnetPortLow;
    PmnetHeader header;
    header.type = type;
    header.sessionId = session_id;
    header.seqNum = seq_num;
    header.hashVal =
        PmnetHeader::computeHash(type, session_id, seq_num, src, dst);
    pkt->pmnet = header;
    pkt->payload = std::move(payload);
    pkt->requestId = request_id;
    return pkt;
}

PacketPtr
makeRefPacket(NodeId src, NodeId dst, PacketType type,
              std::uint16_t session_id, std::uint32_t seq_num,
              std::uint32_t referenced_hash, std::uint64_t request_id)
{
    auto pkt = std::make_shared<Packet>();
    pkt->src = src;
    pkt->dst = dst;
    pkt->srcPort = kPmnetPortLow;
    pkt->dstPort = kPmnetPortLow;
    PmnetHeader header;
    header.type = type;
    header.sessionId = session_id;
    header.seqNum = seq_num;
    header.hashVal = referenced_hash;
    pkt->pmnet = header;
    pkt->requestId = request_id;
    return pkt;
}

PacketPtr
makePlainPacket(NodeId src, NodeId dst, Bytes payload,
                std::uint64_t request_id)
{
    auto pkt = std::make_shared<Packet>();
    pkt->src = src;
    pkt->dst = dst;
    pkt->srcPort = 40000;
    pkt->dstPort = 40000;
    pkt->payload = std::move(payload);
    pkt->requestId = request_id;
    return pkt;
}

std::string
describe(const Packet &pkt)
{
    if (!pkt.pmnet) {
        return formatMessage("plain %u->%u %zuB", pkt.src, pkt.dst,
                             pkt.payload.size());
    }
    return formatMessage("%s s%u q%u %u->%u %zuB",
                         packetTypeName(pkt.pmnet->type),
                         pkt.pmnet->sessionId, pkt.pmnet->seqNum, pkt.src,
                         pkt.dst, pkt.payload.size());
}

} // namespace pmnet::net
