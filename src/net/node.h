/**
 * @file
 * Network node base class: anything with ports that can send and
 * receive packets (hosts, switches, PMNet devices).
 *
 * Nodes also carry the power-failure surface used by the recovery
 * experiments: a failed node silently drops traffic until restored,
 * and subclasses override onPowerFail()/onPowerRestore() to model what
 * their volatile vs. persistent state does across the outage.
 */

#ifndef PMNET_NET_NODE_H
#define PMNET_NET_NODE_H

#include <vector>

#include "net/packet.h"
#include "sim/simulator.h"

namespace pmnet::net {

class Link;

/** A device in the topology, identified by NodeId. */
class Node : public sim::SimObject
{
  public:
    Node(sim::Simulator &simulator, std::string object_name, NodeId node_id)
        : SimObject(simulator, std::move(object_name)), id_(node_id)
    {}

    NodeId id() const { return id_; }

    /** Number of attached links. */
    int portCount() const { return static_cast<int>(ports_.size()); }

    /** Link attached at @p port. @pre port is valid. */
    Link *linkAt(int port) const;

    /**
     * Called by Link when a packet arrives. @p in_port is the local
     * port it arrived on. Not called while the node is failed.
     */
    virtual void receive(PacketPtr pkt, int in_port) = 0;

    /** Transmit @p pkt on @p port. No-op while failed. */
    void send(int port, PacketPtr pkt);

    /** @name Failure injection
     *  @{
     */
    bool isUp() const { return up_; }

    /** Cut power: volatile state is lost, traffic drops. */
    void powerFail();

    /** Restore power and invoke recovery behaviour. */
    void powerRestore();
    /** @} */

  protected:
    /** Subclass hook: discard volatile state. */
    virtual void onPowerFail() {}

    /** Subclass hook: run recovery (persistent state survives). */
    virtual void onPowerRestore() {}

  private:
    friend class Link;

    /** Registers @p link and returns the new port index. */
    int attachLink(Link *link);

    NodeId id_;
    bool up_ = true;
    std::vector<Link *> ports_;
};

} // namespace pmnet::net

#endif // PMNET_NET_NODE_H
