#include "net/topology.h"

#include <queue>

#include "common/logging.h"
#include "sim/parallel.h"

namespace pmnet::net {

sim::Simulator &
Topology::simulator()
{
    if (sim_ == nullptr)
        fatal("Topology::simulator: engine-partitioned topology has no "
              "single shared simulator");
    return *sim_;
}

sim::Simulator &
Topology::simForNewNode()
{
    if (engine_ != nullptr)
        return engine_->addPartition();
    return *sim_;
}

Link &
Topology::connect(Node &a, Node &b, LinkConfig config)
{
    // The link's SimObject base is only a naming/diagnostic anchor;
    // each direction carries its own partition clock.
    auto link = std::make_unique<Link>(
        a.simulator(), formatMessage("link(%s,%s)", a.name().c_str(),
                                     b.name().c_str()),
        a, b, config, engine_);
    Link &ref = *link;
    links_.push_back(std::move(link));
    return ref;
}

Node &
Topology::node(NodeId node_id) const
{
    if (node_id >= nodes_.size())
        panic("Topology: bad node id %u", node_id);
    return *nodes_[node_id];
}

void
Topology::computeRoutes()
{
    // For each source ForwardingNode, BFS over the graph recording the
    // first-hop port toward every destination.
    for (auto &src_owner : nodes_) {
        auto *fwd = dynamic_cast<ForwardingNode *>(src_owner.get());
        if (!fwd)
            continue;

        std::vector<int> first_port(nodes_.size(), -1);
        std::vector<bool> visited(nodes_.size(), false);
        std::queue<NodeId> frontier;
        visited[fwd->id()] = true;
        frontier.push(fwd->id());

        while (!frontier.empty()) {
            NodeId cur = frontier.front();
            frontier.pop();
            Node &cur_node = *nodes_[cur];
            for (int port = 0; port < cur_node.portCount(); port++) {
                Link *link = cur_node.linkAt(port);
                Node &peer = link->peerOf(cur_node);
                if (visited[peer.id()])
                    continue;
                visited[peer.id()] = true;
                // First hop is inherited from the parent, except for
                // the source's direct neighbours.
                first_port[peer.id()] =
                    cur == fwd->id() ? port : first_port[cur];
                frontier.push(peer.id());
            }
        }

        for (NodeId dst = 0; dst < nodes_.size(); dst++) {
            if (dst != fwd->id() && first_port[dst] >= 0)
                fwd->setRoute(dst, first_port[dst]);
        }
    }
}

} // namespace pmnet::net
