/**
 * @file
 * Store-and-forward switching.
 *
 * ForwardingNode holds a destination-to-port routing table (filled in
 * by Topology::computeRoutes via BFS) and the common forward helper.
 * BasicSwitch is the plain datacenter switch from the paper's testbed
 * (sub-microsecond forwarding latency, no application logic); the
 * PMNet device in src/pmnet extends ForwardingNode with the MAT
 * pipeline.
 */

#ifndef PMNET_NET_SWITCH_H
#define PMNET_NET_SWITCH_H

#include <unordered_map>

#include "net/link.h"
#include "net/node.h"

namespace pmnet::obs {
class FlightRecorder;
}

namespace pmnet::net {

/** A node that forwards packets toward destinations by NodeId. */
class ForwardingNode : public Node
{
  public:
    using Node::Node;

    /** Install (or replace) the route for @p dst. */
    void setRoute(NodeId dst, int port) { routes_[dst] = port; }

    /**
     * Output port for @p dst.
     * @return -1 when the destination is unknown (packet is dropped
     *         and counted).
     */
    int routeFor(NodeId dst) const;

    /** Packets dropped because no route existed. */
    std::uint64_t unroutable() const { return unroutable_; }

  protected:
    /**
     * Send @p pkt toward its destination. Drops (and counts) packets
     * with no route.
     */
    void forward(PacketPtr pkt);

  private:
    std::unordered_map<NodeId, int> routes_;
    mutable std::uint64_t unroutable_ = 0;
};

/** Plain switch: forwards every packet after a fixed latency. */
class BasicSwitch : public ForwardingNode
{
  public:
    BasicSwitch(sim::Simulator &simulator, std::string object_name,
                NodeId node_id, TickDelta forward_latency = nanoseconds(500))
        : ForwardingNode(simulator, std::move(object_name), node_id),
          forwardLatency_(forward_latency)
    {}

    void receive(PacketPtr pkt, int in_port) override;

    std::uint64_t packetsForwarded() const { return forwarded_; }

    /** Attach the flight recorder (nullptr detaches): request packets
     *  get their SwitchIngress checkpoint stamped on arrival. */
    void setRecorder(obs::FlightRecorder *recorder)
    {
        recorder_ = recorder;
    }

  private:
    TickDelta forwardLatency_;
    std::uint64_t forwarded_ = 0;
    obs::FlightRecorder *recorder_ = nullptr;
};

} // namespace pmnet::net

#endif // PMNET_NET_SWITCH_H
