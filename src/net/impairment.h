/**
 * @file
 * Declarative per-direction link impairments (DESIGN.md section 15).
 *
 * An Impairment is a value describing what a netem-style adversarial
 * channel does to one direction of a Link: extra latency and jitter,
 * packet reordering, duplication, payload corruption (exercising the
 * CRC-reject path at the receiver), asymmetric bandwidth throttling,
 * and bursty Gilbert–Elliott two-state loss. The Link interprets the
 * value inside transmit() using its own per-direction deterministic
 * RNG, so a run with N engine workers stays byte-identical to the
 * single-threaded run (the determinism contract of DESIGN.md §12).
 *
 * The value doubles as the unit of the scenario DSL's grammar: a
 * token stream like "delay 3us jitter 2us dup 10% corrupt 1%
 * reorder 25% 40us rate 2.5 ge 2% 30% 80%" parses into one
 * Impairment (see parseImpairment).
 */

#ifndef PMNET_NET_IMPAIRMENT_H
#define PMNET_NET_IMPAIRMENT_H

#include <string>

#include "common/stats.h"

namespace pmnet::net {

/**
 * What one adversarial channel direction does to traffic. The
 * default-constructed value is the identity (no impairment); a Link
 * with an inactive Impairment consumes zero extra RNG draws, so
 * installing and removing `Impairment{}` cannot perturb a run.
 */
struct Impairment
{
    /** Fixed extra one-way delay added after serialization. */
    TickDelta extraDelay = 0;
    /** Max additional uniform random delay in [0, jitter]. */
    TickDelta jitter = 0;
    /** Probability a delivered packet is also delivered twice. */
    double duplicateRate = 0.0;
    /**
     * Probability a delivered packet has one CRC-covered header bit
     * flipped (non-PMNet packets get a payload byte flipped); the
     * receiver must detect and drop it.
     */
    double corruptRate = 0.0;
    /** Probability a packet is held back by reorderDelay, letting
     *  later packets overtake it (a reordering window). */
    double reorderRate = 0.0;
    /** How far a reordered packet is held back. */
    TickDelta reorderDelay = 0;
    /** Line-rate override in Gbit/s; 0 keeps the link's native rate.
     *  Applying it to only one direction models asymmetric links. */
    double bandwidthGbps = 0.0;

    /** @name Gilbert–Elliott two-state loss
     * The channel sits in a Good or Bad state with per-packet loss
     * probabilities lossGood/lossBad and per-packet transition
     * probabilities goodToBad/badToGood. Uniform loss p is the
     * degenerate case lossGood == lossBad == p with no transitions.
     *  @{
     */
    double geGoodToBad = 0.0;
    double geBadToGood = 0.0;
    double geLossGood = 0.0;
    double geLossBad = 0.0;
    /** @} */

    /** True when any knob deviates from the identity channel. */
    bool
    active() const
    {
        return extraDelay != 0 || jitter != 0 || duplicateRate > 0.0 ||
               corruptRate > 0.0 || reorderRate > 0.0 ||
               bandwidthGbps > 0.0 || hasLoss();
    }

    /** True when the GE loss process can drop anything. */
    bool
    hasLoss() const
    {
        return geLossGood > 0.0 || geLossBad > 0.0 ||
               geGoodToBad > 0.0;
    }

    /** Uniform loss as the degenerate one-state GE channel. */
    static Impairment
    uniformLoss(double p)
    {
        Impairment imp;
        imp.geLossGood = p;
        imp.geLossBad = p;
        return imp;
    }
};

/**
 * Parse a whitespace-separated impairment token stream:
 *
 *   delay D      fixed extra delay            (D = 300ns | 3us | 1ms)
 *   jitter D     uniform random delay [0, D]
 *   dup P        duplication probability      (P = 10% | 0.1)
 *   corrupt P    corruption probability
 *   reorder P D  hold-back probability and window
 *   rate G       bandwidth override in Gbit/s
 *   loss P       uniform loss probability
 *   ge Pgb Pbg Plbad [Plgood]   Gilbert–Elliott: good->bad and
 *                bad->good transition probabilities, loss-in-bad,
 *                and optional loss-in-good (default 0)
 *
 * An empty stream parses to the identity impairment. Returns false
 * and fills @p error on malformed input.
 */
bool parseImpairment(const std::string &tokens, Impairment *out,
                     std::string *error);

/** Canonical one-line rendering of the grammar above (empty when
 *  inactive); parseImpairment(describeImpairment(i)) round-trips. */
std::string describeImpairment(const Impairment &imp);

/** Parse "300ns" / "25us" / "1.5ms" into ticks; false on garbage. */
bool parseDuration(const std::string &text, TickDelta *out);

/** Parse "10%" or "0.1" into a probability in [0, 1]. */
bool parseProbability(const std::string &text, double *out);

} // namespace pmnet::net

#endif // PMNET_NET_IMPAIRMENT_H
