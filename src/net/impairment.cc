#include "net/impairment.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace pmnet::net {

namespace {

bool
parseNumber(const std::string &text, double *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        return false;
    *out = value;
    return true;
}

/** Render a probability the way the grammar spells it ("3%", "0.5%"). */
std::string
fmtProbability(double p)
{
    char buf[32];
    double pct = p * 100.0;
    if (pct == static_cast<double>(static_cast<long long>(pct)))
        std::snprintf(buf, sizeof(buf), "%lld%%",
                      static_cast<long long>(pct));
    else
        std::snprintf(buf, sizeof(buf), "%g%%", pct);
    return buf;
}

/** Render ticks in the largest unit that divides them evenly. */
std::string
fmtDuration(TickDelta d)
{
    char buf[32];
    if (d % milliseconds(1) == 0 && d != 0)
        std::snprintf(buf, sizeof(buf), "%lldms",
                      static_cast<long long>(d / milliseconds(1)));
    else if (d % microseconds(1) == 0 && d != 0)
        std::snprintf(buf, sizeof(buf), "%lldus",
                      static_cast<long long>(d / microseconds(1)));
    else
        std::snprintf(buf, sizeof(buf), "%lldns",
                      static_cast<long long>(d / nanoseconds(1)));
    return buf;
}

std::string
fmtGbps(double gbps)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", gbps);
    return buf;
}

} // namespace

bool
parseDuration(const std::string &text, TickDelta *out)
{
    std::size_t unit = 0;
    while (unit < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[unit])) ||
            text[unit] == '.' || text[unit] == '-'))
        unit++;
    double value = 0;
    if (unit == 0 || !parseNumber(text.substr(0, unit), &value) ||
        value < 0)
        return false;
    std::string suffix = text.substr(unit);
    if (suffix == "ns")
        *out = nanoseconds(value);
    else if (suffix == "us")
        *out = microseconds(value);
    else if (suffix == "ms")
        *out = milliseconds(value);
    else
        return false;
    return true;
}

bool
parseProbability(const std::string &text, double *out)
{
    std::string body = text;
    double scale = 1.0;
    if (!body.empty() && body.back() == '%') {
        body.pop_back();
        scale = 0.01;
    }
    double value = 0;
    if (!parseNumber(body, &value))
        return false;
    value *= scale;
    if (value < 0.0 || value > 1.0)
        return false;
    *out = value;
    return true;
}

bool
parseImpairment(const std::string &tokens, Impairment *out,
                std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error != nullptr)
            *error = why;
        return false;
    };

    std::vector<std::string> words;
    std::istringstream stream(tokens);
    for (std::string word; stream >> word;)
        words.push_back(word);

    Impairment imp;
    std::size_t i = 0;
    auto needDuration = [&](const char *knob, TickDelta *slot) {
        if (i >= words.size())
            return fail(std::string(knob) + ": missing duration");
        if (!parseDuration(words[i], slot))
            return fail(std::string(knob) + ": bad duration '" +
                        words[i] + "'");
        i++;
        return true;
    };
    auto needProbability = [&](const char *knob, double *slot) {
        if (i >= words.size())
            return fail(std::string(knob) + ": missing probability");
        if (!parseProbability(words[i], slot))
            return fail(std::string(knob) + ": bad probability '" +
                        words[i] + "'");
        i++;
        return true;
    };

    while (i < words.size()) {
        const std::string knob = words[i++];
        if (knob == "delay") {
            if (!needDuration("delay", &imp.extraDelay))
                return false;
        } else if (knob == "jitter") {
            if (!needDuration("jitter", &imp.jitter))
                return false;
        } else if (knob == "dup") {
            if (!needProbability("dup", &imp.duplicateRate))
                return false;
        } else if (knob == "corrupt") {
            if (!needProbability("corrupt", &imp.corruptRate))
                return false;
        } else if (knob == "reorder") {
            if (!needProbability("reorder", &imp.reorderRate) ||
                !needDuration("reorder", &imp.reorderDelay))
                return false;
        } else if (knob == "rate") {
            if (i >= words.size())
                return fail("rate: missing Gbit/s value");
            double gbps = 0;
            if (!parseNumber(words[i], &gbps) || gbps <= 0.0)
                return fail("rate: bad Gbit/s value '" + words[i] +
                            "'");
            imp.bandwidthGbps = gbps;
            i++;
        } else if (knob == "loss") {
            double p = 0;
            if (!needProbability("loss", &p))
                return false;
            imp.geLossGood = p;
            imp.geLossBad = p;
        } else if (knob == "ge") {
            if (!needProbability("ge", &imp.geGoodToBad) ||
                !needProbability("ge", &imp.geBadToGood) ||
                !needProbability("ge", &imp.geLossBad))
                return false;
            // Optional loss-in-good: present iff the next word parses
            // as a probability (the next knob name never does).
            double loss_good = 0;
            if (i < words.size() &&
                parseProbability(words[i], &loss_good)) {
                imp.geLossGood = loss_good;
                i++;
            }
        } else {
            return fail("unknown impairment knob '" + knob + "'");
        }
    }
    *out = imp;
    return true;
}

std::string
describeImpairment(const Impairment &imp)
{
    std::string out;
    auto emit = [&](const std::string &piece) {
        if (!out.empty())
            out += ' ';
        out += piece;
    };
    if (imp.extraDelay != 0)
        emit("delay " + fmtDuration(imp.extraDelay));
    if (imp.jitter != 0)
        emit("jitter " + fmtDuration(imp.jitter));
    if (imp.duplicateRate > 0.0)
        emit("dup " + fmtProbability(imp.duplicateRate));
    if (imp.corruptRate > 0.0)
        emit("corrupt " + fmtProbability(imp.corruptRate));
    if (imp.reorderRate > 0.0)
        emit("reorder " + fmtProbability(imp.reorderRate) + " " +
             fmtDuration(imp.reorderDelay));
    if (imp.bandwidthGbps > 0.0)
        emit("rate " + fmtGbps(imp.bandwidthGbps));
    if (imp.hasLoss()) {
        if (imp.geGoodToBad == 0.0 && imp.geBadToGood == 0.0 &&
            imp.geLossGood == imp.geLossBad) {
            emit("loss " + fmtProbability(imp.geLossGood));
        } else {
            std::string ge = "ge " + fmtProbability(imp.geGoodToBad) +
                             " " + fmtProbability(imp.geBadToGood) +
                             " " + fmtProbability(imp.geLossBad);
            if (imp.geLossGood > 0.0)
                ge += " " + fmtProbability(imp.geLossGood);
            emit(ge);
        }
    }
    return out;
}

} // namespace pmnet::net
