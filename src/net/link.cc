#include "net/link.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/parallel.h"

namespace pmnet::net {

Link *
Node::linkAt(int port) const
{
    if (port < 0 || port >= portCount())
        panic("%s: bad port %d (have %d)", name().c_str(), port,
              portCount());
    return ports_[static_cast<std::size_t>(port)];
}

int
Node::attachLink(Link *link)
{
    ports_.push_back(link);
    return portCount() - 1;
}

void
Node::send(int port, PacketPtr pkt)
{
    if (!up_)
        return;
    linkAt(port)->transmit(*this, std::move(pkt));
}

void
Node::powerFail()
{
    up_ = false;
    onPowerFail();
}

void
Node::powerRestore()
{
    up_ = true;
    onPowerRestore();
}

Link::Link(sim::Simulator &simulator, std::string object_name, Node &end_a,
           Node &end_b, LinkConfig config, sim::Engine *engine)
    : SimObject(simulator, std::move(object_name)), config_(config),
      endA_(&end_a), endB_(&end_b)
{
    if (&end_a == &end_b)
        fatal("%s: cannot connect a node to itself", name().c_str());
    portOnA_ = end_a.attachLink(this);
    portOnB_ = end_b.attachLink(this);

    dirs_[0].to = endB_; // A -> B
    dirs_[0].toPort = portOnB_;
    dirs_[0].sim = &end_a.simulator();
    dirs_[1].to = endA_; // B -> A
    dirs_[1].toPort = portOnA_;
    dirs_[1].sim = &end_b.simulator();
    // One loss stream per direction so each is partition-owned; the
    // A->B stream keeps the historical seed.
    dirs_[0].lossRate = config_.lossRate;
    dirs_[1].lossRate = config_.lossRate;
    dirs_[0].lossRng = Rng(config_.lossSeed);
    dirs_[1].lossRng = Rng(config_.lossSeed ^ 0x9E3779B97F4A7C15ull);
    // Impairment draws get their own per-direction streams so the
    // adversarial channel composes with (never perturbs) lossRate.
    dirs_[0].impairRng = Rng(config_.lossSeed ^ 0x494D5041ull);
    dirs_[1].impairRng =
        Rng(config_.lossSeed ^ 0x494D5041ull ^ 0x9E3779B97F4A7C15ull);

    if (dirs_[0].sim != dirs_[1].sim) {
        if (engine == nullptr)
            fatal("%s: endpoints on different partitions but no engine",
                  name().c_str());
        if (config_.propagation <= 0)
            fatal("%s: cross-partition links need positive propagation "
                  "latency (lookahead bound)",
                  name().c_str());
        dirs_[0].channel =
            &engine->connect(end_b.simulator(), config_.propagation);
        dirs_[1].channel =
            &engine->connect(end_a.simulator(), config_.propagation);
    }
}

Link::Direction &
Link::directionFrom(const Node &from)
{
    if (&from == endA_)
        return dirs_[0];
    if (&from == endB_)
        return dirs_[1];
    panic("%s: node %s is not an endpoint", name().c_str(),
          from.name().c_str());
}

int
Link::portOn(const Node &node) const
{
    if (&node == endA_)
        return portOnA_;
    if (&node == endB_)
        return portOnB_;
    panic("%s: node %s is not an endpoint", name().c_str(),
          node.name().c_str());
}

Node &
Link::peerOf(const Node &node) const
{
    if (&node == endA_)
        return *endB_;
    if (&node == endB_)
        return *endA_;
    panic("%s: node %s is not an endpoint", name().c_str(),
          node.name().c_str());
}

void
Link::dropNext(const Node &from, int n)
{
    directionFrom(from).dropNext += n;
}

void
Link::scheduleLossRateAt(Tick when, double loss_rate)
{
    for (Direction &dir : dirs_) {
        dir.sim->scheduleAt(when, [&dir, loss_rate]() {
            dir.lossRate = loss_rate;
        });
    }
}

void
Link::scheduleDropNextAt(Tick when, const Node &from, int n)
{
    Direction &dir = directionFrom(from);
    dir.sim->scheduleAt(when, [&dir, n]() { dir.dropNext += n; });
}

void
Link::corruptNext(const Node &from, int n)
{
    directionFrom(from).corruptNext += n;
}

void
Link::scheduleCorruptNextAt(Tick when, const Node &from, int n)
{
    Direction &dir = directionFrom(from);
    dir.sim->scheduleAt(when, [&dir, n]() { dir.corruptNext += n; });
}

void
Link::setImpairment(const Node &from, const Impairment &imp)
{
    Direction &dir = directionFrom(from);
    dir.impair = imp;
    dir.geState = 0;
}

void
Link::scheduleImpairmentAt(Tick when, const Node &from, Impairment imp)
{
    Direction &dir = directionFrom(from);
    dir.sim->scheduleAt(when, [&dir, imp]() {
        dir.impair = imp;
        dir.geState = 0;
    });
}

bool
Link::transmit(const Node &from, PacketPtr pkt)
{
    Direction &dir = directionFrom(from);
    std::size_t size = pkt->wireSize();

    // Injected loss: the packet occupies the line as usual but never
    // arrives (it is "corrupted on the wire"). The Gilbert–Elliott
    // channel composes with (runs after) the legacy uniform process:
    // first the state's loss draw, then the state-transition draw, so
    // one packet always costs the same number of impairRng draws.
    bool lose = false;
    if (dir.dropNext > 0) {
        dir.dropNext--;
        lose = true;
    } else if (dir.lossRate > 0.0 &&
               dir.lossRng.nextBool(dir.lossRate)) {
        lose = true;
    }
    if (!lose && dir.impair.hasLoss()) {
        const Impairment &imp = dir.impair;
        lose = dir.impairRng.nextBool(
            dir.geState == 0 ? imp.geLossGood : imp.geLossBad);
        if (dir.impairRng.nextBool(dir.geState == 0 ? imp.geGoodToBad
                                                    : imp.geBadToGood))
            dir.geState ^= 1;
    }
    if (lose) {
        dir.losses++;
        return true;
    }

    bool corrupt_this = dir.corruptNext > 0;
    if (corrupt_this)
        dir.corruptNext--;
    else if (dir.impair.corruptRate > 0.0)
        corrupt_this = dir.impairRng.nextBool(dir.impair.corruptRate);
    if (corrupt_this) {
        dir.corrupted++;
        // Flip one bit of the wire image. For PMNet packets the bit
        // lands in the CRC-covered header region (SeqNum), so the
        // copy parses but fails verifyHash() at the receiver; the
        // sender's original packet is left untouched.
        auto damaged = std::make_shared<Packet>(*pkt);
        if (damaged->pmnet)
            damaged->pmnet->seqNum ^= 0x04;
        else if (!damaged->payload.empty())
            damaged->payload.front() ^= 0x04;
        pkt = std::move(damaged);
    }

    bool duplicate = dir.impair.duplicateRate > 0.0 &&
                     dir.impairRng.nextBool(dir.impair.duplicateRate);

    if (dir.queuedBytes + size > config_.queueBytes) {
        dir.drops++;
        return false;
    }

    Tick now = dir.sim->now();
    Tick depart = std::max(now, dir.lineFreeAt);
    double gbps = dir.impair.bandwidthGbps > 0.0
                      ? dir.impair.bandwidthGbps
                      : config_.gbps;
    TickDelta serialize = serializationDelay(size, gbps);
    dir.lineFreeAt = depart + serialize;
    dir.queuedBytes += size;

    // Post-serialization latency impairments only ever *add* delay,
    // so a cross-partition arrival still respects the channel's
    // propagation lookahead bound, and the mailbox's (arrive, sent)
    // drain order makes overtaking deliveries deterministic.
    TickDelta extra = dir.impair.extraDelay;
    if (dir.impair.jitter > 0)
        extra += static_cast<TickDelta>(dir.impairRng.nextUInt(
            static_cast<std::uint64_t>(dir.impair.jitter) + 1));
    if (dir.impair.reorderRate > 0.0 &&
        dir.impairRng.nextBool(dir.impair.reorderRate)) {
        extra += dir.impair.reorderDelay;
        dir.reordered++;
    }
    if (duplicate)
        dir.duplicated++;

    Tick arrive = depart + serialize + config_.propagation;
    if (dir.channel == nullptr) {
        if (extra == 0 && !duplicate) {
            // Clean-channel fast path, byte-identical to the
            // pre-impairment link: one event, and a capture list
            // small enough for the scheduler's inline small-buffer
            // storage (no heap per hop); the destination node/port
            // are re-read from dir on delivery.
            dir.sim->scheduleAt(arrive, [&dir, size,
                                         pkt = std::move(pkt)]() {
                dir.queuedBytes -= size;
                dir.bytesCarried += size;
                if (dir.to->isUp())
                    dir.to->receive(pkt, dir.toPort);
            });
            return true;
        }
        // Impaired path: wire/queue accounting keeps the un-impaired
        // arrival tick (the line itself is done with the packet), the
        // delivery lands `extra` later, and a duplicate follows one
        // serialization time after the original copy.
        dir.sim->scheduleAt(arrive, [&dir, size]() {
            dir.queuedBytes -= size;
            dir.bytesCarried += size;
        });
        if (duplicate) {
            dir.sim->scheduleAt(arrive + extra + serialize,
                                [&dir, pkt]() {
                                    if (dir.to->isUp())
                                        dir.to->receive(pkt,
                                                        dir.toPort);
                                });
        }
        dir.sim->scheduleAt(arrive + extra,
                            [&dir, pkt = std::move(pkt)]() {
                                if (dir.to->isUp())
                                    dir.to->receive(pkt, dir.toPort);
                            });
        return true;
    }

    // Cross-partition: the wire/queue accounting stays home (same
    // event time as the legacy combined delivery event), while the
    // receive side ships through the mailbox and fires on the target
    // partition re-keyed by the send tick.
    dir.sim->scheduleAt(arrive, [&dir, size]() {
        dir.queuedBytes -= size;
        dir.bytesCarried += size;
    });
    if (duplicate) {
        dir.channel->push(arrive + extra + serialize, now,
                          [&dir, pkt]() {
                              if (dir.to->isUp())
                                  dir.to->receive(pkt, dir.toPort);
                          });
    }
    dir.channel->push(arrive + extra, now,
                      [&dir, pkt = std::move(pkt)]() {
                          if (dir.to->isUp())
                              dir.to->receive(pkt, dir.toPort);
                      });
    return true;
}

} // namespace pmnet::net
