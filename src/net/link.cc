#include "net/link.h"

#include <algorithm>

#include "common/logging.h"

namespace pmnet::net {

Link *
Node::linkAt(int port) const
{
    if (port < 0 || port >= portCount())
        panic("%s: bad port %d (have %d)", name().c_str(), port,
              portCount());
    return ports_[static_cast<std::size_t>(port)];
}

int
Node::attachLink(Link *link)
{
    ports_.push_back(link);
    return portCount() - 1;
}

void
Node::send(int port, PacketPtr pkt)
{
    if (!up_)
        return;
    linkAt(port)->transmit(*this, std::move(pkt));
}

void
Node::powerFail()
{
    up_ = false;
    onPowerFail();
}

void
Node::powerRestore()
{
    up_ = true;
    onPowerRestore();
}

Link::Link(sim::Simulator &simulator, std::string object_name, Node &end_a,
           Node &end_b, LinkConfig config)
    : SimObject(simulator, std::move(object_name)), config_(config),
      endA_(&end_a), endB_(&end_b), lossRng_(config.lossSeed)
{
    if (&end_a == &end_b)
        fatal("%s: cannot connect a node to itself", name().c_str());
    portOnA_ = end_a.attachLink(this);
    portOnB_ = end_b.attachLink(this);
    dirs_[0] = Direction{endB_, portOnB_, 0, 0}; // A -> B
    dirs_[1] = Direction{endA_, portOnA_, 0, 0}; // B -> A
}

Link::Direction &
Link::directionFrom(const Node &from)
{
    if (&from == endA_)
        return dirs_[0];
    if (&from == endB_)
        return dirs_[1];
    panic("%s: node %s is not an endpoint", name().c_str(),
          from.name().c_str());
}

int
Link::portOn(const Node &node) const
{
    if (&node == endA_)
        return portOnA_;
    if (&node == endB_)
        return portOnB_;
    panic("%s: node %s is not an endpoint", name().c_str(),
          node.name().c_str());
}

Node &
Link::peerOf(const Node &node) const
{
    if (&node == endA_)
        return *endB_;
    if (&node == endB_)
        return *endA_;
    panic("%s: node %s is not an endpoint", name().c_str(),
          node.name().c_str());
}

void
Link::dropNext(const Node &from, int n)
{
    directionFrom(from).dropNext += n;
}

bool
Link::transmit(const Node &from, PacketPtr pkt)
{
    Direction &dir = directionFrom(from);
    std::size_t size = pkt->wireSize();

    // Injected loss: the packet occupies the line as usual but never
    // arrives (it is "corrupted on the wire").
    bool lose = false;
    if (dir.dropNext > 0) {
        dir.dropNext--;
        lose = true;
    } else if (config_.lossRate > 0.0 &&
               lossRng_.nextBool(config_.lossRate)) {
        lose = true;
    }
    if (lose) {
        losses_++;
        return true;
    }

    if (dir.queuedBytes + size > config_.queueBytes) {
        drops_++;
        return false;
    }

    Tick now = simulator().now();
    Tick depart = std::max(now, dir.lineFreeAt);
    TickDelta serialize = serializationDelay(size, config_.gbps);
    dir.lineFreeAt = depart + serialize;
    dir.queuedBytes += size;

    Tick arrive = depart + serialize + config_.propagation;
    // Keep the capture list at 40 bytes so the event callback stays in
    // the scheduler's inline small-buffer storage (no heap per hop);
    // the destination node/port are re-read from dir on delivery.
    simulator().scheduleAt(arrive, [this, &dir, size,
                                    pkt = std::move(pkt)]() {
        dir.queuedBytes -= size;
        bytesCarried_ += size;
        if (dir.to->isUp())
            dir.to->receive(pkt, dir.toPort);
    });
    return true;
}

} // namespace pmnet::net
