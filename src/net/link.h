/**
 * @file
 * Point-to-point full-duplex link with a bandwidth, a propagation
 * delay and a bounded egress queue per direction.
 *
 * Serialization is modeled by keeping a per-direction "line free at"
 * time: a packet departs at max(now, line_free) and occupies the line
 * for wireSize/bandwidth. Queued-but-untransmitted bytes beyond the
 * queue capacity are tail-dropped. This is what produces the paper's
 * Fig 16 shape — flat latency until offered load reaches 10 Gbps, then
 * a queueing spike.
 */

#ifndef PMNET_NET_LINK_H
#define PMNET_NET_LINK_H

#include <array>

#include "common/rng.h"
#include "common/stats.h"
#include "net/impairment.h"
#include "net/node.h"

namespace pmnet::sim {
class Engine;
class LinkChannel;
} // namespace pmnet::sim

namespace pmnet::net {

/** Static link parameters. */
struct LinkConfig
{
    /** Line rate in Gbit/s. */
    double gbps = 10.0;
    /** One-way propagation delay. */
    TickDelta propagation = nanoseconds(300);
    /** Max bytes waiting for the line per direction (tail drop). */
    std::size_t queueBytes = 2 * 1024 * 1024;
    /** Random per-packet loss probability (failure experiments). */
    double lossRate = 0.0;
    /** Seed for the loss process. */
    std::uint64_t lossSeed = 0x4C4F5353;
};

/**
 * A duplex link between exactly two nodes.
 *
 * Each direction's state (line occupancy, egress queue, loss process,
 * counters) is wholly owned by the *transmitting* endpoint's
 * partition, so the two directions never share mutable state. When
 * the endpoints live on different Engine partitions, delivery crosses
 * through a sim::LinkChannel mailbox bounded by the propagation
 * latency — links are exactly the lookahead edges of DESIGN.md §12.
 * The queue-release accounting stays on the transmitting partition
 * (a local event at the arrival tick), matching the single-simulator
 * event order.
 */
class Link : public sim::SimObject
{
  public:
    Link(sim::Simulator &simulator, std::string object_name,
         Node &end_a, Node &end_b, LinkConfig config = {},
         sim::Engine *engine = nullptr);

    /**
     * Enqueue @p pkt for transmission away from @p from.
     * @return false if the egress queue overflowed (packet dropped).
     */
    bool transmit(const Node &from, PacketPtr pkt);

    /** Port index of this link on node @p node. */
    int portOn(const Node &node) const;

    /** The node on the other end of the link from @p node. */
    Node &peerOf(const Node &node) const;

    const LinkConfig &config() const { return config_; }

    /**
     * Change the random per-packet loss probability at runtime (both
     * directions). Each direction's loss RNG keeps its stream, so a
     * plan replayed with the same seed loses exactly the same
     * packets. Only safe while the simulation is not running — while
     * an Engine is mid-run, use scheduleLossRateAt instead.
     */
    void
    setLossRate(double loss_rate)
    {
        dirs_[0].lossRate = loss_rate;
        dirs_[1].lossRate = loss_rate;
    }

    /**
     * Schedule a loss-rate change at absolute tick @p when as one
     * event per direction, each on the partition that owns it — the
     * partition-safe form of setLossRate for scripted fault plans.
     * Call from the coordinating thread between runs.
     */
    void scheduleLossRateAt(Tick when, double loss_rate);

    /** Partition-safe scheduled form of dropNext. */
    void scheduleDropNextAt(Tick when, const Node &from, int n);

    /**
     * Corrupt the next @p n packets transmitted away from @p from:
     * the packet is delivered, but with one bit of its PMNet header
     * flipped, so it parses and then fails the CRC check at the
     * receiver (Section IV-A2 integrity story). Non-PMNet packets
     * get a payload byte flipped instead.
     */
    void corruptNext(const Node &from, int n);

    /** Partition-safe scheduled form of corruptNext. */
    void scheduleCorruptNextAt(Tick when, const Node &from, int n);

    /**
     * Install an adversarial channel on the direction transmitting
     * away from @p from (DESIGN.md section 15). Replaces any previous
     * impairment; `Impairment{}` restores the clean channel. Resets
     * the Gilbert–Elliott state to Good. Only safe while the
     * simulation is not running — mid-run, use scheduleImpairmentAt.
     */
    void setImpairment(const Node &from, const Impairment &imp);

    /** Partition-safe scheduled form of setImpairment. */
    void scheduleImpairmentAt(Tick when, const Node &from,
                              Impairment imp);

    /** Extra copies delivered by the duplication impairment. */
    std::uint64_t
    duplicates() const
    {
        return dirs_[0].duplicated + dirs_[1].duplicated;
    }

    /** Packets held back by the reordering impairment (and thus
     *  overtaken by any packet serialized within the window). */
    std::uint64_t
    reorders() const
    {
        return dirs_[0].reordered + dirs_[1].reordered;
    }

    /** Packets delivered with an injected corruption. */
    std::uint64_t
    corruptions() const
    {
        return dirs_[0].corrupted + dirs_[1].corrupted;
    }

    /** Packets dropped due to egress-queue overflow. */
    std::uint64_t drops() const { return dirs_[0].drops + dirs_[1].drops; }

    /** Packets lost to injected loss (random or dropNext). */
    std::uint64_t
    losses() const
    {
        return dirs_[0].losses + dirs_[1].losses;
    }

    /**
     * Deterministically drop the next @p n packets transmitted away
     * from @p from (loss-injection for the Fig 7b tests).
     */
    void dropNext(const Node &from, int n);

    /** Total bytes that finished serialization onto the wire. */
    std::uint64_t
    bytesCarried() const
    {
        return dirs_[0].bytesCarried + dirs_[1].bytesCarried;
    }

  private:
    struct Direction
    {
        Node *to = nullptr;
        int toPort = -1;
        /** The transmitting endpoint's simulator — every field below
         *  is only touched by events on this partition. */
        sim::Simulator *sim = nullptr;
        /** Cross-partition mailbox; null when both ends share sim. */
        sim::LinkChannel *channel = nullptr;
        Tick lineFreeAt = 0;
        std::size_t queuedBytes = 0;
        int dropNext = 0;
        int corruptNext = 0;
        double lossRate = 0.0;
        Rng lossRng{0};
        /**
         * The direction's adversarial channel. All impairment draws
         * come from impairRng — a stream separate from lossRng, so
         * installing an impairment never shifts the legacy lossRate
         * process — and an inactive impairment consumes zero draws.
         */
        Impairment impair;
        /** Gilbert–Elliott channel state: 0 = Good, 1 = Bad. */
        int geState = 0;
        Rng impairRng{0};
        std::uint64_t drops = 0;
        std::uint64_t losses = 0;
        std::uint64_t corrupted = 0;
        std::uint64_t duplicated = 0;
        std::uint64_t reordered = 0;
        std::uint64_t bytesCarried = 0;
    };

    /** Direction whose traffic flows away from @p from. */
    Direction &directionFrom(const Node &from);

    LinkConfig config_;
    Node *endA_;
    Node *endB_;
    int portOnA_;
    int portOnB_;
    std::array<Direction, 2> dirs_;
};

} // namespace pmnet::net

#endif // PMNET_NET_LINK_H
