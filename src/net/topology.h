/**
 * @file
 * Topology container: owns nodes and links, assigns NodeIds, and
 * computes shortest-path routes for every ForwardingNode via BFS.
 *
 * Hosts (single-homed endpoints) do not need routing tables — they
 * always transmit on their only port; switches and PMNet devices get a
 * full destination-to-port map.
 */

#ifndef PMNET_NET_TOPOLOGY_H
#define PMNET_NET_TOPOLOGY_H

#include <memory>
#include <vector>

#include "net/switch.h"

namespace pmnet::net {

/**
 * Owns the graph of nodes and links for one experiment.
 *
 * Two construction modes: bound to one Simulator (every node shares
 * it — the historical single-threaded layout), or bound to a
 * sim::Engine, in which case every node gets its *own* partition and
 * every link doubles as the lookahead-bounded channel pair between
 * its endpoints' partitions. The partition layout is a pure function
 * of the topology (one per node, in addNode order) — never of the
 * engine's worker count — which is what makes N-worker runs
 * byte-identical to 1-worker runs.
 */
class Topology
{
  public:
    explicit Topology(sim::Simulator &simulator) : sim_(&simulator) {}

    /** Engine-partitioned mode: one partition per node. */
    explicit Topology(sim::Engine &engine) : engine_(&engine) {}

    /**
     * Construct and register a node. NodeId is supplied by the
     * topology via the second constructor argument slot.
     *
     * Usage: topo.addNode<BasicSwitch>("tor") — the factory passes
     * (simulator, name, node_id) and forwards extra args after them.
     */
    template <typename NodeT, typename... Args>
    NodeT &
    addNode(std::string object_name, Args &&...args)
    {
        NodeId node_id = static_cast<NodeId>(nodes_.size());
        auto node = std::make_unique<NodeT>(simForNewNode(),
                                            std::move(object_name),
                                            node_id,
                                            std::forward<Args>(args)...);
        NodeT &ref = *node;
        nodes_.push_back(std::move(node));
        return ref;
    }

    /** Connect two registered nodes with a link. */
    Link &connect(Node &a, Node &b, LinkConfig config = {});

    /**
     * Fill routing tables of all ForwardingNodes with BFS next hops
     * toward every node. Call once after the graph is complete.
     */
    void computeRoutes();

    std::size_t nodeCount() const { return nodes_.size(); }
    Node &node(NodeId node_id) const;

    /** The shared simulator. @pre single-simulator mode. */
    sim::Simulator &simulator();

    /** The owning engine; null in single-simulator mode. */
    sim::Engine *engine() const { return engine_; }

  private:
    sim::Simulator &simForNewNode();

    sim::Simulator *sim_ = nullptr;
    sim::Engine *engine_ = nullptr;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<std::unique_ptr<Link>> links_;
};

} // namespace pmnet::net

#endif // PMNET_NET_TOPOLOGY_H
