/**
 * @file
 * Topology container: owns nodes and links, assigns NodeIds, and
 * computes shortest-path routes for every ForwardingNode via BFS.
 *
 * Hosts (single-homed endpoints) do not need routing tables — they
 * always transmit on their only port; switches and PMNet devices get a
 * full destination-to-port map.
 */

#ifndef PMNET_NET_TOPOLOGY_H
#define PMNET_NET_TOPOLOGY_H

#include <memory>
#include <vector>

#include "net/switch.h"

namespace pmnet::net {

/** Owns the graph of nodes and links for one experiment. */
class Topology
{
  public:
    explicit Topology(sim::Simulator &simulator) : sim_(simulator) {}

    /**
     * Construct and register a node. NodeId is supplied by the
     * topology via the second constructor argument slot.
     *
     * Usage: topo.addNode<BasicSwitch>("tor") — the factory passes
     * (simulator, name, node_id) and forwards extra args after them.
     */
    template <typename NodeT, typename... Args>
    NodeT &
    addNode(std::string object_name, Args &&...args)
    {
        NodeId node_id = static_cast<NodeId>(nodes_.size());
        auto node = std::make_unique<NodeT>(sim_, std::move(object_name),
                                            node_id,
                                            std::forward<Args>(args)...);
        NodeT &ref = *node;
        nodes_.push_back(std::move(node));
        return ref;
    }

    /** Connect two registered nodes with a link. */
    Link &connect(Node &a, Node &b, LinkConfig config = {});

    /**
     * Fill routing tables of all ForwardingNodes with BFS next hops
     * toward every node. Call once after the graph is complete.
     */
    void computeRoutes();

    std::size_t nodeCount() const { return nodes_.size(); }
    Node &node(NodeId node_id) const;

    sim::Simulator &simulator() { return sim_; }

  private:
    sim::Simulator &sim_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<std::unique_ptr<Link>> links_;
};

} // namespace pmnet::net

#endif // PMNET_NET_TOPOLOGY_H
