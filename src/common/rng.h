/**
 * @file
 * Deterministic random-number generation for workloads and the simulator.
 *
 * A xoshiro256** core keeps runs reproducible across platforms (unlike
 * std::default_random_engine) and is cheap enough to call per-request.
 * On top of it sit the distributions the evaluation needs: uniform ints,
 * the YCSB-style Zipfian key popularity distribution, and exponential
 * inter-arrival times for open-loop tests.
 */

#ifndef PMNET_COMMON_RNG_H
#define PMNET_COMMON_RNG_H

#include <cstdint>

namespace pmnet {

/**
 * xoshiro256** pseudo-random generator.
 *
 * Satisfies UniformRandomBitGenerator, so it can also be plugged into
 * <random> distributions where convenient.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed via splitmix64 so nearby seeds give unrelated streams. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return UINT64_MAX; }

    /** Next raw 64-bit value. */
    std::uint64_t operator()();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextUInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t nextInt(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** True with probability @p p (clamped to [0,1]). */
    bool nextBool(double p);

    /** Fork an independent stream (for per-client generators). */
    Rng split();

  private:
    std::uint64_t s[4];
};

/**
 * Zipfian distribution over [0, n), per Gray et al. / the YCSB
 * implementation. theta defaults to the YCSB standard 0.99.
 *
 * Item 0 is the most popular. Used for key popularity in the KV and
 * caching experiments (Fig 19 and Fig 20).
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint64_t n, double theta = 0.99);

    /** Draw one item index in [0, n). */
    std::uint64_t next(Rng &rng);

    std::uint64_t itemCount() const { return n_; }
    double theta() const { return theta_; }

  private:
    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;

    static double zeta(std::uint64_t n, double theta);
};

/**
 * Exponential inter-arrival generator for open-loop load (stress test,
 * Fig 16). Mean is expressed directly in simulated nanoseconds.
 */
class ExponentialGenerator
{
  public:
    explicit ExponentialGenerator(double mean_ns);

    /** Draw one inter-arrival gap in nanoseconds (>= 1). */
    std::int64_t next(Rng &rng);

  private:
    double mean_;
};

} // namespace pmnet

#endif // PMNET_COMMON_RNG_H
