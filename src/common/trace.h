/**
 * @file
 * Bounded event tracing.
 *
 * A TraceRing keeps the last N (tick, message) events of a component.
 * Devices and libraries record into it when a ring is attached, so
 * tracing costs nothing when disabled and can never grow unbounded
 * when enabled — suitable for multi-second simulations.
 */

#ifndef PMNET_COMMON_TRACE_H
#define PMNET_COMMON_TRACE_H

#include <functional>
#include <string>
#include <vector>

#include "common/time.h"

namespace pmnet {

/** Fixed-capacity ring of trace events. */
class TraceRing
{
  public:
    struct Event
    {
        Tick when = 0;
        std::string text;
    };

    explicit TraceRing(std::size_t capacity = 256)
        : capacity_(capacity ? capacity : 1)
    {
        events_.reserve(capacity_);
    }

    /** Append an event, evicting the oldest when full. */
    void
    record(Tick when, std::string text)
    {
        if (events_.size() < capacity_) {
            events_.push_back(Event{when, std::move(text)});
        } else {
            events_[head_] = Event{when, std::move(text)};
            head_ = (head_ + 1) % capacity_;
        }
        recorded_++;
    }

    /** Events currently retained (≤ capacity). */
    std::size_t size() const { return events_.size(); }

    /** Total events ever recorded (including evicted ones). */
    std::uint64_t recorded() const { return recorded_; }

    std::size_t capacity() const { return capacity_; }

    /** Visit retained events oldest-first. */
    void
    forEach(const std::function<void(const Event &)> &fn) const
    {
        for (std::size_t i = 0; i < events_.size(); i++)
            fn(events_[(head_ + i) % events_.size()]);
    }

    void
    clear()
    {
        events_.clear();
        head_ = 0;
    }

  private:
    std::size_t capacity_;
    std::vector<Event> events_;
    std::size_t head_ = 0;
    std::uint64_t recorded_ = 0;
};

} // namespace pmnet

#endif // PMNET_COMMON_TRACE_H
