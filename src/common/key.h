/**
 * @file
 * The key fast path: hash once, carry the hash with the key.
 *
 * Every keyed lookup the data plane performs — the in-switch read
 * cache on UPDATE/READ packets, the server KV store on applied
 * requests — used to construct a std::string and re-hash it inside
 * each container. KeyRef is a non-owning view plus a 64-bit hash
 * computed exactly once, where the packet is parsed; every table on
 * the request path accepts it directly (heterogeneous lookup), so a
 * key is never copied and never hashed twice per packet.
 *
 * FlatKeyTable is the matching string-keyed open-addressing table:
 * power-of-two slot array with linear probing and tombstone-free
 * backward-shift deletion, entries in a stable slab addressed by
 * 32-bit indices. The stable indices are what make an *intrusive* LRU
 * possible on top (prev/next links stored in the entry itself — see
 * pmnet::ReadCache), replacing the node-per-key std::list that
 * allocated on every touch.
 */

#ifndef PMNET_COMMON_KEY_H
#define PMNET_COMMON_KEY_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"

namespace pmnet {

/**
 * 64-bit key hash (MurmurHash64A). Strong bit diffusion so the low
 * bits can index power-of-two tables directly, and cheap enough to
 * run once per packet at parse time.
 */
inline std::uint64_t
hashKey(const void *data, std::size_t len)
{
    constexpr std::uint64_t m = 0xC6A4A7935BD1E995ull;
    constexpr int r = 47;
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = 0x8445D61A4E774912ull ^ (len * m);

    for (; len >= 8; p += 8, len -= 8) {
        std::uint64_t k;
        std::memcpy(&k, p, 8);
        k *= m;
        k ^= k >> r;
        k *= m;
        h ^= k;
        h *= m;
    }

    std::uint64_t tail = 0;
    switch (len) {
      case 7: tail ^= std::uint64_t(p[6]) << 48; [[fallthrough]];
      case 6: tail ^= std::uint64_t(p[5]) << 40; [[fallthrough]];
      case 5: tail ^= std::uint64_t(p[4]) << 32; [[fallthrough]];
      case 4: tail ^= std::uint64_t(p[3]) << 24; [[fallthrough]];
      case 3: tail ^= std::uint64_t(p[2]) << 16; [[fallthrough]];
      case 2: tail ^= std::uint64_t(p[1]) << 8;  [[fallthrough]];
      case 1:
        tail ^= std::uint64_t(p[0]);
        h ^= tail;
        h *= m;
        break;
      case 0:
        break;
    }

    h ^= h >> r;
    h *= m;
    h ^= h >> r;
    return h;
}

inline std::uint64_t
hashKey(std::string_view key)
{
    return hashKey(key.data(), key.size());
}

/**
 * A non-owning key view carrying its hash.
 *
 * Construction from bytes is the single point where the hash is
 * computed; everything downstream (cache, KV store, tables) reuses
 * it. The view must outlive the call it is passed to — typically it
 * points into a packet payload or a caller-owned std::string.
 */
class KeyRef
{
  public:
    KeyRef() = default;

    /** Hash-once entry point (use at parse time). */
    explicit KeyRef(std::string_view key)
        : view_(key), hash_(hashKey(key)) {}

    /** Re-wrap an already-hashed key (hash must be hashKey(key)). */
    KeyRef(std::string_view key, std::uint64_t hash)
        : view_(key), hash_(hash) {}

    std::string_view view() const { return view_; }
    std::uint64_t hash() const { return hash_; }

    const char *data() const { return view_.data(); }
    std::size_t size() const { return view_.size(); }

    bool
    operator==(const KeyRef &other) const
    {
        return hash_ == other.hash_ && view_ == other.view_;
    }

  private:
    std::string_view view_;
    std::uint64_t hash_ = 0;
};

/**
 * String-keyed open-addressing hash table with stable entry indices.
 *
 * Layout: a power-of-two slot array of 32-bit entry indices (linear
 * probing, tombstone-free backward-shift deletion) over a slab of
 * entries {key, hash, value}. Erasing or growing never moves slab
 * entries, so an Index handed out by find()/insert() stays valid
 * until that entry is erased — which lets values embed intrusive
 * links (LRU lists) keyed by Index.
 *
 * Lookup is heterogeneous by KeyRef: the caller's precomputed hash
 * selects the probe window and prefilters candidates, so a probe
 * costs one index load + one hash compare per step and the key bytes
 * are only compared on a hash match.
 */
template <typename T>
class FlatKeyTable
{
  public:
    using Index = std::uint32_t;

    /** Sentinel: not an entry (absent key, empty slot, null link). */
    static constexpr Index kNil = 0xFFFFFFFFu;

    struct Entry
    {
        std::string key;
        std::uint64_t hash = 0;
        T value{};
    };

    explicit FlatKeyTable(std::size_t min_slots = 16)
    {
        std::size_t n = 16;
        while (n < min_slots)
            n <<= 1;
        slots_.assign(n, kNil);
        mask_ = n - 1;
    }

    /** Index of @p key, or kNil. */
    Index
    find(KeyRef key) const
    {
        for (std::size_t i = key.hash() & mask_;; i = (i + 1) & mask_) {
            Index idx = slots_[i];
            if (idx == kNil)
                return kNil;
            const Entry &entry = entries_[idx];
            if (entry.hash == key.hash() && entry.key == key.view())
                return idx;
        }
    }

    /**
     * Find-or-insert @p key (value default-constructed on insert).
     * @return {index, true} when inserted, {index, false} when found.
     */
    std::pair<Index, bool>
    insert(KeyRef key)
    {
        // Keep load <= 3/4 so probe sequences stay short.
        if ((live_ + 1) * 4 > slots_.size() * 3)
            grow();
        for (std::size_t i = key.hash() & mask_;; i = (i + 1) & mask_) {
            Index idx = slots_[i];
            if (idx == kNil) {
                idx = allocEntry(key);
                slots_[i] = idx;
                live_++;
                return {idx, true};
            }
            const Entry &entry = entries_[idx];
            if (entry.hash == key.hash() && entry.key == key.view())
                return {idx, false};
        }
    }

    /** Erase @p key. @return true when it existed. */
    bool
    erase(KeyRef key)
    {
        for (std::size_t i = key.hash() & mask_;; i = (i + 1) & mask_) {
            Index idx = slots_[i];
            if (idx == kNil)
                return false;
            const Entry &entry = entries_[idx];
            if (entry.hash == key.hash() && entry.key == key.view()) {
                removeSlot(i);
                freeEntry(idx);
                return true;
            }
        }
    }

    /** Erase the entry at @p idx (must be live). */
    void
    eraseIndex(Index idx)
    {
        const Entry &entry = entries_[idx];
        for (std::size_t i = entry.hash & mask_;; i = (i + 1) & mask_) {
            if (slots_[i] == idx) {
                removeSlot(i);
                freeEntry(idx);
                return;
            }
            if (slots_[i] == kNil)
                panic("FlatKeyTable: eraseIndex of unreachable entry");
        }
    }

    Entry &entry(Index idx) { return entries_[idx]; }
    const Entry &entry(Index idx) const { return entries_[idx]; }

    std::size_t size() const { return live_; }
    bool empty() const { return live_ == 0; }
    std::size_t slotCount() const { return slots_.size(); }

    void
    clear()
    {
        slots_.assign(slots_.size(), kNil);
        entries_.clear();
        freeList_.clear();
        live_ = 0;
    }

    /** Visit every live entry (unspecified order). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (Index idx : slots_)
            if (idx != kNil)
                fn(entries_[idx]);
    }

  private:
    Index
    allocEntry(KeyRef key)
    {
        Index idx;
        if (!freeList_.empty()) {
            idx = freeList_.back();
            freeList_.pop_back();
        } else {
            if (entries_.size() >= kNil)
                fatal("FlatKeyTable: entry count exceeds 2^32-1");
            idx = static_cast<Index>(entries_.size());
            entries_.emplace_back();
        }
        Entry &entry = entries_[idx];
        entry.key.assign(key.view()); // reuses freed capacity
        entry.hash = key.hash();
        return idx;
    }

    void
    freeEntry(Index idx)
    {
        Entry &entry = entries_[idx];
        entry.key.clear();
        entry.hash = 0;
        entry.value = T{};
        freeList_.push_back(idx);
        live_--;
    }

    /**
     * Backward-shift deletion (Knuth 6.4, Algorithm R): close the gap
     * at slot @p i by shifting later probe-chain members down, so no
     * tombstones are ever needed.
     */
    void
    removeSlot(std::size_t i)
    {
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask_;
            Index idx = slots_[j];
            if (idx == kNil)
                break;
            std::size_t home = entries_[idx].hash & mask_;
            // Shift down only if the element's probe path covers i:
            // the cyclic distance home->j must reach back to i.
            if (((j - home) & mask_) >= ((j - i) & mask_)) {
                slots_[i] = idx;
                i = j;
            }
        }
        slots_[i] = kNil;
    }

    void
    grow()
    {
        std::vector<Index> old = std::move(slots_);
        slots_.assign(old.size() * 2, kNil);
        mask_ = slots_.size() - 1;
        // Re-place by stored hash: growth never re-reads key bytes.
        for (Index idx : old) {
            if (idx == kNil)
                continue;
            std::size_t i = entries_[idx].hash & mask_;
            while (slots_[i] != kNil)
                i = (i + 1) & mask_;
            slots_[i] = idx;
        }
    }

    std::vector<Index> slots_;
    std::vector<Entry> entries_;
    std::vector<Index> freeList_;
    std::size_t mask_ = 0;
    std::size_t live_ = 0;
};

} // namespace pmnet

#endif // PMNET_COMMON_KEY_H
