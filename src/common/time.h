/**
 * @file
 * Simulated-time primitives.
 *
 * The whole PMNet reproduction runs on a discrete-event simulator whose
 * clock advances in integer nanoseconds. Using a strong typedef (rather
 * than std::chrono) keeps event arithmetic trivial and serializable while
 * still giving readable construction helpers (nanoseconds(), microseconds(),
 * ...). All latency constants in the testbed configuration are expressed
 * in these units.
 */

#ifndef PMNET_COMMON_TIME_H
#define PMNET_COMMON_TIME_H

#include <cstdint>

namespace pmnet {

/** Simulated time, in nanoseconds since simulation start. */
using Tick = std::int64_t;

/** A duration in simulated nanoseconds. */
using TickDelta = std::int64_t;

/** Largest representable tick; used as an "infinitely far" deadline. */
inline constexpr Tick kTickMax = INT64_MAX;

/** @name Duration construction helpers
 *  Readable literals for latency constants, e.g. microseconds(8.5).
 *  @{
 */
constexpr TickDelta
nanoseconds(std::int64_t n)
{
    return n;
}

constexpr TickDelta
microseconds(double us)
{
    return static_cast<TickDelta>(us * 1e3);
}

constexpr TickDelta
milliseconds(double ms)
{
    return static_cast<TickDelta>(ms * 1e6);
}

constexpr TickDelta
seconds(double s)
{
    return static_cast<TickDelta>(s * 1e9);
}
/** @} */

/** @name Duration conversion helpers
 *  @{
 */
constexpr double
toMicroseconds(TickDelta d)
{
    return static_cast<double>(d) / 1e3;
}

constexpr double
toMilliseconds(TickDelta d)
{
    return static_cast<double>(d) / 1e6;
}

constexpr double
toSeconds(TickDelta d)
{
    return static_cast<double>(d) / 1e9;
}
/** @} */

/**
 * Serialization delay for @p bytes on a link of @p gbps gigabits/s.
 *
 * Used both by the wire model and by the BDP sizing math from the
 * paper's Section V-A (Equations 1 and 2).
 */
constexpr TickDelta
serializationDelay(std::uint64_t bytes, double gbps)
{
    // bits / (gbit/s) = nanoseconds when gbps is in Gbit/s.
    return static_cast<TickDelta>(static_cast<double>(bytes * 8) / gbps);
}

} // namespace pmnet

#endif // PMNET_COMMON_TIME_H
