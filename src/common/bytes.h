/**
 * @file
 * Bounds-checked binary serialization helpers.
 *
 * Packet headers and payloads are encoded little-endian through
 * ByteWriter and decoded through ByteReader. The reader reports
 * truncation instead of crashing so malformed packets can be dropped
 * gracefully by the data plane.
 */

#ifndef PMNET_COMMON_BYTES_H
#define PMNET_COMMON_BYTES_H

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace pmnet {

/** Raw byte buffer used throughout the network substrate. */
using Bytes = std::vector<std::uint8_t>;

/** Appends little-endian fields to a Bytes buffer. */
class ByteWriter
{
  public:
    explicit ByteWriter(Bytes &out) : out_(out) {}

    void writeU8(std::uint8_t v) { out_.push_back(v); }

    // Multi-byte writes stage the little-endian image on the stack and
    // append it with one insert (one capacity check instead of one per
    // byte) — header/command encoding is a per-packet hot path.

    void
    writeU16(std::uint16_t v)
    {
        const std::uint8_t b[2] = {static_cast<std::uint8_t>(v),
                                   static_cast<std::uint8_t>(v >> 8)};
        writeBytes(b, sizeof(b));
    }

    void
    writeU32(std::uint32_t v)
    {
        const std::uint8_t b[4] = {static_cast<std::uint8_t>(v),
                                   static_cast<std::uint8_t>(v >> 8),
                                   static_cast<std::uint8_t>(v >> 16),
                                   static_cast<std::uint8_t>(v >> 24)};
        writeBytes(b, sizeof(b));
    }

    void
    writeU64(std::uint64_t v)
    {
        const std::uint8_t b[8] = {static_cast<std::uint8_t>(v),
                                   static_cast<std::uint8_t>(v >> 8),
                                   static_cast<std::uint8_t>(v >> 16),
                                   static_cast<std::uint8_t>(v >> 24),
                                   static_cast<std::uint8_t>(v >> 32),
                                   static_cast<std::uint8_t>(v >> 40),
                                   static_cast<std::uint8_t>(v >> 48),
                                   static_cast<std::uint8_t>(v >> 56)};
        writeBytes(b, sizeof(b));
    }

    void
    writeBytes(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        out_.insert(out_.end(), p, p + len);
    }

    /** Length-prefixed (u32) string. */
    void
    writeString(std::string_view s)
    {
        writeU32(static_cast<std::uint32_t>(s.size()));
        writeBytes(s.data(), s.size());
    }

    std::size_t size() const { return out_.size(); }

  private:
    Bytes &out_;
};

/**
 * Consumes little-endian fields from a byte range.
 *
 * Any read past the end sets ok() to false and returns zero values;
 * callers check ok() once after parsing a whole header.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t len)
        : data_(data), len_(len)
    {}

    explicit ByteReader(const Bytes &buf)
        : ByteReader(buf.data(), buf.size())
    {}

    std::uint8_t
    readU8()
    {
        if (!require(1))
            return 0;
        return data_[pos_++];
    }

    // Multi-byte reads do one bounds check and, on little-endian
    // hosts, one unaligned memcpy load (compiled to a plain mov) —
    // header parsing is a per-packet hot path.

    std::uint16_t
    readU16()
    {
        if (!require(2))
            return 0;
        std::uint16_t v;
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(&v, data_ + pos_, 2);
        } else {
            v = static_cast<std::uint16_t>(
                data_[pos_] | (data_[pos_ + 1] << 8));
        }
        pos_ += 2;
        return v;
    }

    std::uint32_t
    readU32()
    {
        if (!require(4))
            return 0;
        std::uint32_t v;
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(&v, data_ + pos_, 4);
        } else {
            v = static_cast<std::uint32_t>(data_[pos_]) |
                (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
                (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
        }
        pos_ += 4;
        return v;
    }

    std::uint64_t
    readU64()
    {
        if (!require(8))
            return 0;
        std::uint64_t v;
        if constexpr (std::endian::native == std::endian::little) {
            std::memcpy(&v, data_ + pos_, 8);
        } else {
            std::uint64_t lo = static_cast<std::uint32_t>(
                data_[pos_] |
                (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
                (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24));
            std::uint64_t hi = static_cast<std::uint32_t>(
                data_[pos_ + 4] |
                (static_cast<std::uint32_t>(data_[pos_ + 5]) << 8) |
                (static_cast<std::uint32_t>(data_[pos_ + 6]) << 16) |
                (static_cast<std::uint32_t>(data_[pos_ + 7]) << 24));
            v = lo | (hi << 32);
        }
        pos_ += 8;
        return v;
    }

    Bytes
    readBytes(std::size_t len)
    {
        if (!require(len))
            return {};
        Bytes out(data_ + pos_, data_ + pos_ + len);
        pos_ += len;
        return out;
    }

    /**
     * readBytes into an existing buffer, reusing its capacity (the
     * packet-pool fast path: parsing into a recycled payload buffer
     * allocates nothing at steady state). @p out must not alias the
     * reader's input. Leaves @p out empty on truncation.
     */
    void
    readBytesInto(Bytes &out, std::size_t len)
    {
        out.clear();
        if (!require(len))
            return;
        out.insert(out.end(), data_ + pos_, data_ + pos_ + len);
        pos_ += len;
    }

    std::string
    readString()
    {
        std::uint32_t len = readU32();
        if (!require(len))
            return {};
        std::string out(reinterpret_cast<const char *>(data_ + pos_), len);
        pos_ += len;
        return out;
    }

    /**
     * Zero-copy readString: a view into the reader's buffer (the
     * per-packet parse fast path — no allocation). Valid only while
     * the underlying buffer lives; empty view on truncation.
     */
    std::string_view
    readStringView()
    {
        std::uint32_t len = readU32();
        if (!require(len))
            return {};
        std::string_view out(reinterpret_cast<const char *>(data_ + pos_),
                             len);
        pos_ += len;
        return out;
    }

    /** Current read position (valid for remaining() bytes). */
    const std::uint8_t *peek() const { return data_ + pos_; }

    /** Advance past @p n bytes (sets ok() false past the end). */
    void
    skip(std::size_t n)
    {
        if (require(n))
            pos_ += n;
    }

    /** Remaining unread bytes. */
    std::size_t remaining() const { return ok_ ? len_ - pos_ : 0; }

    /** False once any read ran past the end of the buffer. */
    bool ok() const { return ok_; }

    std::size_t position() const { return pos_; }

  private:
    bool
    require(std::size_t n)
    {
        if (!ok_ || len_ - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const std::uint8_t *data_;
    std::size_t len_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace pmnet

#endif // PMNET_COMMON_BYTES_H
