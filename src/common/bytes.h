/**
 * @file
 * Bounds-checked binary serialization helpers.
 *
 * Packet headers and payloads are encoded little-endian through
 * ByteWriter and decoded through ByteReader. The reader reports
 * truncation instead of crashing so malformed packets can be dropped
 * gracefully by the data plane.
 */

#ifndef PMNET_COMMON_BYTES_H
#define PMNET_COMMON_BYTES_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace pmnet {

/** Raw byte buffer used throughout the network substrate. */
using Bytes = std::vector<std::uint8_t>;

/** Appends little-endian fields to a Bytes buffer. */
class ByteWriter
{
  public:
    explicit ByteWriter(Bytes &out) : out_(out) {}

    void writeU8(std::uint8_t v) { out_.push_back(v); }

    void
    writeU16(std::uint16_t v)
    {
        writeU8(static_cast<std::uint8_t>(v));
        writeU8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    writeU32(std::uint32_t v)
    {
        writeU16(static_cast<std::uint16_t>(v));
        writeU16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    writeU64(std::uint64_t v)
    {
        writeU32(static_cast<std::uint32_t>(v));
        writeU32(static_cast<std::uint32_t>(v >> 32));
    }

    void
    writeBytes(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        out_.insert(out_.end(), p, p + len);
    }

    /** Length-prefixed (u32) string. */
    void
    writeString(const std::string &s)
    {
        writeU32(static_cast<std::uint32_t>(s.size()));
        writeBytes(s.data(), s.size());
    }

    std::size_t size() const { return out_.size(); }

  private:
    Bytes &out_;
};

/**
 * Consumes little-endian fields from a byte range.
 *
 * Any read past the end sets ok() to false and returns zero values;
 * callers check ok() once after parsing a whole header.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t len)
        : data_(data), len_(len)
    {}

    explicit ByteReader(const Bytes &buf)
        : ByteReader(buf.data(), buf.size())
    {}

    std::uint8_t
    readU8()
    {
        if (!require(1))
            return 0;
        return data_[pos_++];
    }

    std::uint16_t
    readU16()
    {
        std::uint16_t lo = readU8();
        std::uint16_t hi = readU8();
        return static_cast<std::uint16_t>(lo | (hi << 8));
    }

    std::uint32_t
    readU32()
    {
        std::uint32_t lo = readU16();
        std::uint32_t hi = readU16();
        return lo | (hi << 16);
    }

    std::uint64_t
    readU64()
    {
        std::uint64_t lo = readU32();
        std::uint64_t hi = readU32();
        return lo | (hi << 32);
    }

    Bytes
    readBytes(std::size_t len)
    {
        if (!require(len))
            return {};
        Bytes out(data_ + pos_, data_ + pos_ + len);
        pos_ += len;
        return out;
    }

    std::string
    readString()
    {
        std::uint32_t len = readU32();
        if (!require(len))
            return {};
        std::string out(reinterpret_cast<const char *>(data_ + pos_), len);
        pos_ += len;
        return out;
    }

    /** Remaining unread bytes. */
    std::size_t remaining() const { return ok_ ? len_ - pos_ : 0; }

    /** False once any read ran past the end of the buffer. */
    bool ok() const { return ok_; }

    std::size_t position() const { return pos_; }

  private:
    bool
    require(std::size_t n)
    {
        if (!ok_ || len_ - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const std::uint8_t *data_;
    std::size_t len_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace pmnet

#endif // PMNET_COMMON_BYTES_H
