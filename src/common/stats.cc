#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace pmnet {

void
LatencySeries::setMode(StatsMode mode)
{
    if (!empty())
        panic("LatencySeries::setMode on a non-empty series");
    mode_ = mode;
}

void
LatencySeries::add(TickDelta sample)
{
    if (mode_ == StatsMode::Streaming) {
        hist_.add(sample);
        return;
    }
    samples_.push_back(sample);
    dirty_ = true;
}

void
LatencySeries::merge(const LatencySeries &other)
{
    if (empty())
        mode_ = other.mode_;
    if (other.mode_ == StatsMode::Exact) {
        for (TickDelta s : other.samples_)
            add(s);
        return;
    }
    if (mode_ == StatsMode::Exact)
        panic("LatencySeries::merge: streaming source into a non-empty "
              "exact series (raw samples unavailable)");
    hist_.merge(other.hist_);
}

std::size_t
LatencySeries::count() const
{
    if (mode_ == StatsMode::Streaming)
        return static_cast<std::size_t>(hist_.count());
    return samples_.size();
}

void
LatencySeries::clear()
{
    samples_.clear();
    hist_.clear();
    dirty_ = true;
}

void
LatencySeries::ensureSorted() const
{
    if (!dirty_)
        return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
}

double
LatencySeries::mean() const
{
    if (empty())
        panic("LatencySeries::mean on empty series");
    if (mode_ == StatsMode::Streaming)
        return hist_.mean();
    double sum = 0.0;
    for (TickDelta s : samples_)
        sum += static_cast<double>(s);
    return sum / static_cast<double>(samples_.size());
}

TickDelta
LatencySeries::percentile(double p) const
{
    if (empty())
        panic("LatencySeries::percentile on empty series");
    if (p < 0.0 || p > 100.0)
        panic("LatencySeries::percentile: p=%f out of range", p);
    if (mode_ == StatsMode::Streaming)
        return hist_.percentile(p);
    ensureSorted();
    // Nearest-rank definition.
    std::size_t n = sorted_.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    if (rank > n)
        rank = n;
    return sorted_[rank - 1];
}

TickDelta
LatencySeries::min() const
{
    if (empty())
        panic("LatencySeries::min on empty series");
    if (mode_ == StatsMode::Streaming)
        return hist_.min();
    ensureSorted();
    return sorted_.front();
}

TickDelta
LatencySeries::max() const
{
    if (empty())
        panic("LatencySeries::max on empty series");
    if (mode_ == StatsMode::Streaming)
        return hist_.max();
    ensureSorted();
    return sorted_.back();
}

std::vector<std::pair<TickDelta, double>>
LatencySeries::cdf(std::size_t points) const
{
    std::vector<std::pair<TickDelta, double>> out;
    if (empty() || points == 0)
        return out;
    if (mode_ == StatsMode::Streaming)
        return hist_.cdf(points);
    ensureSorted();
    std::size_t n = sorted_.size();
    out.reserve(points);
    for (std::size_t i = 1; i <= points; i++) {
        double frac = static_cast<double>(i) / static_cast<double>(points);
        std::size_t idx = static_cast<std::size_t>(
            std::ceil(frac * static_cast<double>(n)));
        if (idx == 0)
            idx = 1;
        if (idx > n)
            idx = n;
        out.emplace_back(sorted_[idx - 1], frac);
    }
    return out;
}

void
ThroughputMeter::start(Tick now)
{
    startTick_ = now;
    stopTick_ = now;
    completed_ = 0;
}

void
ThroughputMeter::stop(Tick now)
{
    stopTick_ = now;
}

double
ThroughputMeter::opsPerSecond() const
{
    TickDelta window = stopTick_ - startTick_;
    if (window <= 0)
        panic("ThroughputMeter: empty or unclosed window");
    return static_cast<double>(completed_) / toSeconds(window);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("TablePrinter: row has %zu cells, expected %zu",
              cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

void
TablePrinter::print() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); c++)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); c++)
            std::printf("%-*s%s", static_cast<int>(widths[c]),
                        cells[c].c_str(),
                        c + 1 == cells.size() ? "\n" : "  ");
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    for (std::size_t i = 0; i + 2 < total; i++)
        std::printf("-");
    std::printf("\n");
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace pmnet
