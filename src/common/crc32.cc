#include "common/crc32.h"

#include <array>

namespace pmnet {

namespace {

std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; i++) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; bit++)
            c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256> gTable = makeTable();

} // namespace

std::uint32_t
crc32Update(std::uint32_t crc, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < len; i++)
        crc = gTable[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

std::uint32_t
crc32(const void *data, std::size_t len)
{
    return crc32Update(0, data, len);
}

} // namespace pmnet
