#include "common/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace pmnet {

namespace {

/**
 * Slice-by-8 table set. Table 0 is the classic byte-at-a-time table;
 * table k gives the effect of a byte after k further zero bytes have
 * been folded in, so one iteration can consume 8 input bytes with
 * eight independent lookups (Intel's slicing-by-8 construction, as
 * used by zlib-ng and the Linux kernel).
 */
struct Tables
{
    std::uint32_t t[8][256];
};

Tables
makeTables()
{
    Tables tables{};
    for (std::uint32_t i = 0; i < 256; i++) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; bit++)
            c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        tables.t[0][i] = c;
    }
    for (int k = 1; k < 8; k++) {
        for (std::uint32_t i = 0; i < 256; i++) {
            std::uint32_t c = tables.t[k - 1][i];
            tables.t[k][i] = tables.t[0][c & 0xFF] ^ (c >> 8);
        }
    }
    return tables;
}

const Tables gTables = makeTables();

} // namespace

std::uint32_t
crc32Update(std::uint32_t crc, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    const auto &t = gTables.t;
    crc = ~crc;

    // The 8-byte fold XORs the running CRC into the first word, which
    // is only the correct polynomial arithmetic when the word's memory
    // order matches the CRC's reflected bit order (little-endian).
    // Big-endian hosts take the plain table loop below.
    if constexpr (std::endian::native == std::endian::little) {
        while (len >= 8) {
            std::uint32_t lo, hi;
            std::memcpy(&lo, bytes, 4);
            std::memcpy(&hi, bytes + 4, 4);
            lo ^= crc;
            crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^
                  t[5][(lo >> 16) & 0xFF] ^ t[4][lo >> 24] ^
                  t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
                  t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
            bytes += 8;
            len -= 8;
        }
    }

    while (len--)
        crc = t[0][(crc ^ *bytes++) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

std::uint32_t
crc32(const void *data, std::size_t len)
{
    return crc32Update(0, data, len);
}

std::uint32_t
crc32Reference(std::uint32_t crc, const void *data, std::size_t len)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < len; i++) {
        crc ^= bytes[i];
        for (int bit = 0; bit < 8; bit++)
            crc = (crc & 1) ? (0xEDB88320u ^ (crc >> 1)) : (crc >> 1);
    }
    return ~crc;
}

} // namespace pmnet
