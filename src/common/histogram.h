/**
 * @file
 * Log-bucketed streaming histogram (HdrHistogram-style).
 *
 * Large sweeps (fig16/fig19/fig20 grids) record millions of latency
 * samples per run; storing every raw sample and re-sorting on each
 * percentile query dominated the measurement cost. Histogram keeps
 * O(1)-time add with a fixed ~57 KB footprint and answers percentile
 * queries in one pass over the buckets, at a bounded relative error.
 *
 * Bucket layout: values below 256 get one bucket each (exact); every
 * higher power-of-two octave [2^m, 2^(m+1)) is split into 128
 * equal-width sub-buckets. A bucket therefore spans at most 1/128 of
 * its lower bound, and reporting the bucket midpoint bounds the
 * relative quantile error by 1/256 (< 0.4%, comfortably inside the
 * 1% target). count/sum/min/max are tracked exactly.
 */

#ifndef PMNET_COMMON_HISTOGRAM_H
#define PMNET_COMMON_HISTOGRAM_H

#include <cstdint>
#include <utility>
#include <vector>

namespace pmnet {

/** Fixed-error streaming histogram over non-negative int64 values. */
class Histogram
{
  public:
    /** Worst-case relative error of any reported quantile value. */
    static constexpr double kMaxRelativeError = 1.0 / 256.0;

    /** Record one value (negatives are clamped to 0). O(1). */
    void add(std::int64_t value);

    /** Fold @p other's population into this histogram. */
    void merge(const Histogram &other);

    /** Drop all recorded values (keeps bucket storage). */
    void clear();

    std::uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** Exact arithmetic mean. @pre not empty. */
    double mean() const;

    /** Exact extrema. @pre not empty. */
    std::int64_t min() const;
    std::int64_t max() const;

    /**
     * Nearest-rank percentile (0 <= p <= 100), accurate to
     * kMaxRelativeError. @pre not empty.
     */
    std::int64_t percentile(double p) const;

    /**
     * Evenly spaced CDF points: @p points pairs of
     * (value, cumulative_fraction), mirroring LatencySeries::cdf.
     */
    std::vector<std::pair<std::int64_t, double>> cdf(std::size_t points) const;

    /** Heap bytes held by the bucket array (diagnostics). */
    std::size_t memoryBytes() const;

  private:
    // 256 exact buckets + 128 sub-buckets for each octave 2^8..2^62.
    static constexpr int kSubBits = 7; // 128 sub-buckets per octave
    static constexpr std::size_t kLinear = 256;
    static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
    static constexpr std::size_t kBuckets =
        kLinear + (62 - 8 + 1) * kSubBuckets;

    static std::size_t bucketOf(std::uint64_t value);
    static std::int64_t bucketMid(std::size_t index);

    /** Value whose rank (1-based) is @p rank. @pre 1 <= rank <= count. */
    std::int64_t valueAtRank(std::uint64_t rank) const;

    std::vector<std::uint64_t> counts_; ///< lazily sized to kBuckets
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    std::int64_t min_ = 0;
    std::int64_t max_ = 0;
};

} // namespace pmnet

#endif // PMNET_COMMON_HISTOGRAM_H
