#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace pmnet {

namespace {
LogLevel gLevel = LogLevel::Warn;
} // namespace

LogLevel
logLevel()
{
    return gLevel;
}

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

std::string
vformatMessage(const char *fmt, std::va_list args)
{
    std::va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
formatMessage(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vformatMessage(fmt, args);
    va_end(args);
    return out;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatMessage(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatMessage(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (gLevel < LogLevel::Warn)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatMessage(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (gLevel < LogLevel::Inform)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatMessage(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debug(const char *fmt, ...)
{
    if (gLevel < LogLevel::Debug)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vformatMessage(fmt, args);
    va_end(args);
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace pmnet
