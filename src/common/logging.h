/**
 * @file
 * Status and error reporting, following the gem5 logging discipline.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump sees the failure point.
 * fatal()  — the caller/user asked for something impossible (bad config);
 *            exits with an error code.
 * warn()   — something works but is suspicious or approximated.
 * inform() — plain status output.
 *
 * All of them accept printf-style formatting.
 */

#ifndef PMNET_COMMON_LOGGING_H
#define PMNET_COMMON_LOGGING_H

#include <cstdarg>
#include <string>

namespace pmnet {

/** Verbosity levels for informational output. */
enum class LogLevel { Silent, Warn, Inform, Debug };

/** Process-wide verbosity. Defaults to Warn (tests stay quiet). */
LogLevel logLevel();

/** Set process-wide verbosity. */
void setLogLevel(LogLevel level);

/** Format a printf-style message into a std::string. */
std::string vformatMessage(const char *fmt, std::va_list args);

/** Format a printf-style message into a std::string. */
std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal bug and abort.
 *
 * Call when a condition that should be impossible regardless of user
 * input is observed.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug-level trace output (only shown at LogLevel::Debug). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace pmnet

#endif // PMNET_COMMON_LOGGING_H
