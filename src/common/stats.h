/**
 * @file
 * Measurement collection for the evaluation harness.
 *
 * LatencySeries stores raw samples (simulation scale makes this cheap)
 * so exact percentiles and CDFs can be extracted — the paper reports
 * mean, p50, p99 and full CDFs (Fig 20). ThroughputMeter converts
 * completed-request counts over simulated time into requests/second.
 */

#ifndef PMNET_COMMON_STATS_H
#define PMNET_COMMON_STATS_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace pmnet {

/** A collection of latency samples with percentile/CDF extraction. */
class LatencySeries
{
  public:
    /** Record one sample (in simulated ns). */
    void add(TickDelta sample);

    /** Number of recorded samples. */
    std::size_t count() const { return samples_.size(); }

    bool empty() const { return samples_.empty(); }

    /** Arithmetic mean in ns. @pre not empty. */
    double mean() const;

    /** Exact percentile (0 <= p <= 100) in ns. @pre not empty. */
    TickDelta percentile(double p) const;

    TickDelta min() const;
    TickDelta max() const;

    /**
     * Evenly spaced CDF points: @p points pairs of
     * (latency_ns, cumulative_fraction).
     */
    std::vector<std::pair<TickDelta, double>> cdf(std::size_t points) const;

    /** Discard all samples (e.g. after warm-up). */
    void clear() { samples_.clear(); dirty_ = true; }

    /** Raw access for custom analyses. */
    const std::vector<TickDelta> &samples() const { return samples_; }

  private:
    void ensureSorted() const;

    std::vector<TickDelta> samples_;
    mutable std::vector<TickDelta> sorted_;
    mutable bool dirty_ = true;
};

/** Completed-operation counter over a simulated time window. */
class ThroughputMeter
{
  public:
    /** Begin (or re-begin) the measurement window at @p now. */
    void start(Tick now);

    /** Count one completed operation. */
    void complete() { completed_++; }

    /** Close the window at @p now. */
    void stop(Tick now);

    std::uint64_t completed() const { return completed_; }

    /** Operations per simulated second. @pre window closed, non-empty. */
    double opsPerSecond() const;

  private:
    Tick startTick_ = 0;
    Tick stopTick_ = 0;
    std::uint64_t completed_ = 0;
};

/** Named monotonically increasing counter. */
struct Counter
{
    std::uint64_t value = 0;

    void inc(std::uint64_t by = 1) { value += by; }
    std::uint64_t get() const { return value; }
};

/**
 * Minimal fixed-width table printer used by the bench binaries to emit
 * the paper's rows/series in a uniform format.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render to stdout. */
    void print() const;

    static std::string fmt(double v, int precision = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pmnet

#endif // PMNET_COMMON_STATS_H
