/**
 * @file
 * Measurement collection for the evaluation harness.
 *
 * LatencySeries records latency samples in one of two modes:
 *
 *  - Exact (default): every raw sample is stored, so percentiles and
 *    CDFs are exact — what tests and small runs want, and what the
 *    paper's CDF plots (Fig 20) are extracted from.
 *  - Streaming: samples feed a log-bucketed Histogram (O(1) add,
 *    fixed footprint, < 0.4% quantile error) — what the large
 *    fig16/fig19/fig20 sweep grids opt into, where raw storage and
 *    per-query re-sorting of millions of samples dominated the
 *    measurement cost.
 *
 * ThroughputMeter converts completed-request counts over simulated
 * time into requests/second.
 */

#ifndef PMNET_COMMON_STATS_H
#define PMNET_COMMON_STATS_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/time.h"

namespace pmnet {

/** How a LatencySeries stores its samples. */
enum class StatsMode {
    Exact,     ///< raw samples, exact percentiles/CDF
    Streaming, ///< log-bucketed histogram, bounded-error percentiles
};

/** A collection of latency samples with percentile/CDF extraction. */
class LatencySeries
{
  public:
    LatencySeries() = default;
    explicit LatencySeries(StatsMode mode) : mode_(mode) {}

    StatsMode mode() const { return mode_; }

    /** Switch storage mode. @pre no samples recorded yet. */
    void setMode(StatsMode mode);

    /** Record one sample (in simulated ns). */
    void add(TickDelta sample);

    /**
     * Fold another series' samples into this one. An empty series
     * adopts @p other's mode; merging a streaming source into a
     * non-empty exact series is an error (raw samples are gone).
     */
    void merge(const LatencySeries &other);

    /** Number of recorded samples. */
    std::size_t count() const;

    bool empty() const { return count() == 0; }

    /** Arithmetic mean in ns (exact in both modes). @pre not empty. */
    double mean() const;

    /**
     * Percentile (0 <= p <= 100) in ns: exact in Exact mode, within
     * Histogram::kMaxRelativeError in Streaming mode. @pre not empty.
     */
    TickDelta percentile(double p) const;

    /** Extrema (exact in both modes). @pre not empty. */
    TickDelta min() const;
    TickDelta max() const;

    /**
     * Evenly spaced CDF points: @p points pairs of
     * (latency_ns, cumulative_fraction).
     */
    std::vector<std::pair<TickDelta, double>> cdf(std::size_t points) const;

    /** Discard all samples (e.g. after warm-up). Keeps the mode. */
    void clear();

    /**
     * Raw access for custom analyses. Only populated in Exact mode;
     * a streaming series has no raw samples to expose.
     */
    const std::vector<TickDelta> &samples() const { return samples_; }

  private:
    void ensureSorted() const;

    StatsMode mode_ = StatsMode::Exact;
    std::vector<TickDelta> samples_;
    Histogram hist_;
    mutable std::vector<TickDelta> sorted_;
    mutable bool dirty_ = true;
};

/** Completed-operation counter over a simulated time window. */
class ThroughputMeter
{
  public:
    /** Begin (or re-begin) the measurement window at @p now. */
    void start(Tick now);

    /** Count one completed operation. */
    void complete() { completed_++; }

    /**
     * Fold @p n completions counted elsewhere into this window — how
     * the testbed merges per-driver shard counts after a partitioned
     * run (the shards count during the window; the shared meter owns
     * the window boundaries).
     */
    void addCompleted(std::uint64_t n) { completed_ += n; }

    /** Close the window at @p now. */
    void stop(Tick now);

    std::uint64_t completed() const { return completed_; }

    /** Operations per simulated second. @pre window closed, non-empty. */
    double opsPerSecond() const;

  private:
    Tick startTick_ = 0;
    Tick stopTick_ = 0;
    std::uint64_t completed_ = 0;
};

/** Named monotonically increasing counter. */
struct Counter
{
    std::uint64_t value = 0;

    void inc(std::uint64_t by = 1) { value += by; }
    std::uint64_t get() const { return value; }
};

/**
 * Minimal fixed-width table printer used by the bench binaries to emit
 * the paper's rows/series in a uniform format.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render to stdout. */
    void print() const;

    static std::string fmt(double v, int precision = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pmnet

#endif // PMNET_COMMON_STATS_H
