#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"

namespace pmnet {

std::size_t
Histogram::bucketOf(std::uint64_t value)
{
    if (value < kLinear)
        return static_cast<std::size_t>(value);
    int msb = std::bit_width(value) - 1; // >= 8
    std::size_t sub =
        static_cast<std::size_t>(value >> (msb - kSubBits)) &
        (kSubBuckets - 1);
    return kLinear + static_cast<std::size_t>(msb - 8) * kSubBuckets + sub;
}

std::int64_t
Histogram::bucketMid(std::size_t index)
{
    if (index < kLinear)
        return static_cast<std::int64_t>(index); // exact bucket
    std::size_t rel = index - kLinear;
    int msb = static_cast<int>(rel / kSubBuckets) + 8;
    std::uint64_t sub = rel % kSubBuckets;
    std::uint64_t width = std::uint64_t{1} << (msb - kSubBits);
    std::uint64_t low = (std::uint64_t{1} << msb) + sub * width;
    return static_cast<std::int64_t>(low + width / 2);
}

void
Histogram::add(std::int64_t value)
{
    if (value < 0)
        value = 0;
    if (counts_.empty())
        counts_.resize(kBuckets, 0);
    counts_[bucketOf(static_cast<std::uint64_t>(value))]++;
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    count_++;
    sum_ += static_cast<double>(value);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    if (counts_.empty())
        counts_.resize(kBuckets, 0);
    for (std::size_t i = 0; i < kBuckets; i++)
        counts_[i] += other.counts_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Histogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0;
    max_ = 0;
}

double
Histogram::mean() const
{
    if (count_ == 0)
        panic("Histogram::mean on empty histogram");
    return sum_ / static_cast<double>(count_);
}

std::int64_t
Histogram::min() const
{
    if (count_ == 0)
        panic("Histogram::min on empty histogram");
    return min_;
}

std::int64_t
Histogram::max() const
{
    if (count_ == 0)
        panic("Histogram::max on empty histogram");
    return max_;
}

std::int64_t
Histogram::valueAtRank(std::uint64_t rank) const
{
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts_.size(); i++) {
        cum += counts_[i];
        if (cum >= rank) {
            // Clamp to the exact extrema so p0/p100 stay exact and no
            // bucket midpoint escapes the observed range.
            return std::clamp(bucketMid(i), min_, max_);
        }
    }
    return max_;
}

std::int64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        panic("Histogram::percentile on empty histogram");
    if (p < 0.0 || p > 100.0)
        panic("Histogram::percentile: p=%f out of range", p);
    // Nearest-rank, matching LatencySeries::percentile.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    if (rank == 0)
        rank = 1;
    if (rank > count_)
        rank = count_;
    return valueAtRank(rank);
}

std::vector<std::pair<std::int64_t, double>>
Histogram::cdf(std::size_t points) const
{
    std::vector<std::pair<std::int64_t, double>> out;
    if (count_ == 0 || points == 0)
        return out;
    out.reserve(points);
    // One pass over the buckets serves every point: target ranks are
    // monotonically increasing in i.
    std::uint64_t cum = 0;
    std::size_t bucket = 0;
    for (std::size_t i = 1; i <= points; i++) {
        double frac = static_cast<double>(i) / static_cast<double>(points);
        std::uint64_t rank = static_cast<std::uint64_t>(
            std::ceil(frac * static_cast<double>(count_)));
        if (rank == 0)
            rank = 1;
        if (rank > count_)
            rank = count_;
        while (bucket < counts_.size() && cum + counts_[bucket] < rank)
            cum += counts_[bucket++];
        std::int64_t value =
            bucket < counts_.size() ? bucketMid(bucket) : max_;
        out.emplace_back(std::clamp(value, min_, max_), frac);
    }
    return out;
}

std::size_t
Histogram::memoryBytes() const
{
    return counts_.capacity() * sizeof(std::uint64_t);
}

} // namespace pmnet
