/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial, reflected).
 *
 * The PMNet header carries a CRC-32 HashVal computed by the sender's
 * network stack (paper Section IV-A1); the device uses it both as an
 * integrity check and as the index into the in-network log store.
 *
 * crc32Update is the hot-path implementation: slice-by-8 (eight
 * 256-entry tables, 8 input bytes folded per iteration) on
 * little-endian hosts, single-table byte-at-a-time elsewhere.
 * crc32Reference is the bit-at-a-time definition of the polynomial,
 * kept as the independent oracle the fast path is tested against.
 */

#ifndef PMNET_COMMON_CRC32_H
#define PMNET_COMMON_CRC32_H

#include <cstddef>
#include <cstdint>

namespace pmnet {

/** Incrementally update a CRC-32 over @p len bytes at @p data. */
std::uint32_t crc32Update(std::uint32_t crc, const void *data,
                          std::size_t len);

/** One-shot CRC-32 of a byte range. */
std::uint32_t crc32(const void *data, std::size_t len);

/**
 * Bit-at-a-time reference implementation (the polynomial's
 * definition). Slow; exists so tests can cross-check the table-driven
 * fast path against an independent oracle.
 */
std::uint32_t crc32Reference(std::uint32_t crc, const void *data,
                             std::size_t len);

} // namespace pmnet

#endif // PMNET_COMMON_CRC32_H
