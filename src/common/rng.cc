#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace pmnet {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

std::uint64_t
Rng::operator()()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::nextUInt(std::uint64_t bound)
{
    if (bound == 0)
        panic("Rng::nextUInt: bound must be positive");
    // Lemire-style rejection to avoid modulo bias.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = (*this)();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextInt(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::nextInt: empty range [%lld, %lld]",
              static_cast<long long>(lo), static_cast<long long>(hi));
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextUInt(span));
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

Rng
Rng::split()
{
    return Rng((*this)());
}

double
ZipfianGenerator::zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; i++)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    if (n == 0)
        panic("ZipfianGenerator: item count must be positive");
    zetan_ = zeta(n, theta);
    double zeta2 = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2 / zetan_);
}

std::uint64_t
ZipfianGenerator::next(Rng &rng)
{
    double u = rng.nextDouble();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    double v = static_cast<double>(n_) *
               std::pow(eta_ * u - eta_ + 1.0, alpha_);
    std::uint64_t item = static_cast<std::uint64_t>(v);
    return item >= n_ ? n_ - 1 : item;
}

ExponentialGenerator::ExponentialGenerator(double mean_ns) : mean_(mean_ns)
{
    if (mean_ns <= 0.0)
        panic("ExponentialGenerator: mean must be positive");
}

std::int64_t
ExponentialGenerator::next(Rng &rng)
{
    double u = rng.nextDouble();
    // Guard against log(0).
    if (u <= 0.0)
        u = 1e-18;
    double gap = -mean_ * std::log(u);
    std::int64_t ticks = static_cast<std::int64_t>(gap);
    return ticks < 1 ? 1 : ticks;
}

} // namespace pmnet
