# Empty dependencies file for pmnet_core.
# This may be replaced when dependencies are built.
