file(REMOVE_RECURSE
  "CMakeFiles/pmnet_core.dir/device.cc.o"
  "CMakeFiles/pmnet_core.dir/device.cc.o.d"
  "CMakeFiles/pmnet_core.dir/read_cache.cc.o"
  "CMakeFiles/pmnet_core.dir/read_cache.cc.o.d"
  "libpmnet_core.a"
  "libpmnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
