file(REMOVE_RECURSE
  "libpmnet_core.a"
)
