
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/blob.cc" "src/kv/CMakeFiles/pmnet_kv.dir/blob.cc.o" "gcc" "src/kv/CMakeFiles/pmnet_kv.dir/blob.cc.o.d"
  "/root/repo/src/kv/btree.cc" "src/kv/CMakeFiles/pmnet_kv.dir/btree.cc.o" "gcc" "src/kv/CMakeFiles/pmnet_kv.dir/btree.cc.o.d"
  "/root/repo/src/kv/ctree.cc" "src/kv/CMakeFiles/pmnet_kv.dir/ctree.cc.o" "gcc" "src/kv/CMakeFiles/pmnet_kv.dir/ctree.cc.o.d"
  "/root/repo/src/kv/hashmap.cc" "src/kv/CMakeFiles/pmnet_kv.dir/hashmap.cc.o" "gcc" "src/kv/CMakeFiles/pmnet_kv.dir/hashmap.cc.o.d"
  "/root/repo/src/kv/kv_store.cc" "src/kv/CMakeFiles/pmnet_kv.dir/kv_store.cc.o" "gcc" "src/kv/CMakeFiles/pmnet_kv.dir/kv_store.cc.o.d"
  "/root/repo/src/kv/rbtree.cc" "src/kv/CMakeFiles/pmnet_kv.dir/rbtree.cc.o" "gcc" "src/kv/CMakeFiles/pmnet_kv.dir/rbtree.cc.o.d"
  "/root/repo/src/kv/skiplist.cc" "src/kv/CMakeFiles/pmnet_kv.dir/skiplist.cc.o" "gcc" "src/kv/CMakeFiles/pmnet_kv.dir/skiplist.cc.o.d"
  "/root/repo/src/kv/store_base.cc" "src/kv/CMakeFiles/pmnet_kv.dir/store_base.cc.o" "gcc" "src/kv/CMakeFiles/pmnet_kv.dir/store_base.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pm/CMakeFiles/pmnet_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pmnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pmnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmnet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
