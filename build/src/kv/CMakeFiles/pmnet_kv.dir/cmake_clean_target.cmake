file(REMOVE_RECURSE
  "libpmnet_kv.a"
)
