# Empty dependencies file for pmnet_kv.
# This may be replaced when dependencies are built.
