file(REMOVE_RECURSE
  "CMakeFiles/pmnet_kv.dir/blob.cc.o"
  "CMakeFiles/pmnet_kv.dir/blob.cc.o.d"
  "CMakeFiles/pmnet_kv.dir/btree.cc.o"
  "CMakeFiles/pmnet_kv.dir/btree.cc.o.d"
  "CMakeFiles/pmnet_kv.dir/ctree.cc.o"
  "CMakeFiles/pmnet_kv.dir/ctree.cc.o.d"
  "CMakeFiles/pmnet_kv.dir/hashmap.cc.o"
  "CMakeFiles/pmnet_kv.dir/hashmap.cc.o.d"
  "CMakeFiles/pmnet_kv.dir/kv_store.cc.o"
  "CMakeFiles/pmnet_kv.dir/kv_store.cc.o.d"
  "CMakeFiles/pmnet_kv.dir/rbtree.cc.o"
  "CMakeFiles/pmnet_kv.dir/rbtree.cc.o.d"
  "CMakeFiles/pmnet_kv.dir/skiplist.cc.o"
  "CMakeFiles/pmnet_kv.dir/skiplist.cc.o.d"
  "CMakeFiles/pmnet_kv.dir/store_base.cc.o"
  "CMakeFiles/pmnet_kv.dir/store_base.cc.o.d"
  "libpmnet_kv.a"
  "libpmnet_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmnet_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
