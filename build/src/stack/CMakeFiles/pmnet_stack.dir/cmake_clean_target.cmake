file(REMOVE_RECURSE
  "libpmnet_stack.a"
)
