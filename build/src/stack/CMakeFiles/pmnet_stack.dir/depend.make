# Empty dependencies file for pmnet_stack.
# This may be replaced when dependencies are built.
