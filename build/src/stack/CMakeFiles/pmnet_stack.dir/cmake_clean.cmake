file(REMOVE_RECURSE
  "CMakeFiles/pmnet_stack.dir/client_lib.cc.o"
  "CMakeFiles/pmnet_stack.dir/client_lib.cc.o.d"
  "CMakeFiles/pmnet_stack.dir/host.cc.o"
  "CMakeFiles/pmnet_stack.dir/host.cc.o.d"
  "CMakeFiles/pmnet_stack.dir/server_lib.cc.o"
  "CMakeFiles/pmnet_stack.dir/server_lib.cc.o.d"
  "libpmnet_stack.a"
  "libpmnet_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmnet_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
