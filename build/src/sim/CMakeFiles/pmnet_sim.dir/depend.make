# Empty dependencies file for pmnet_sim.
# This may be replaced when dependencies are built.
