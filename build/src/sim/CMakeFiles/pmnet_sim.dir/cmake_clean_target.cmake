file(REMOVE_RECURSE
  "libpmnet_sim.a"
)
