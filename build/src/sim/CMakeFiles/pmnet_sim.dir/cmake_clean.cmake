file(REMOVE_RECURSE
  "CMakeFiles/pmnet_sim.dir/simulator.cc.o"
  "CMakeFiles/pmnet_sim.dir/simulator.cc.o.d"
  "libpmnet_sim.a"
  "libpmnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
