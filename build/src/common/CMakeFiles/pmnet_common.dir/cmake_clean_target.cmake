file(REMOVE_RECURSE
  "libpmnet_common.a"
)
