file(REMOVE_RECURSE
  "CMakeFiles/pmnet_common.dir/crc32.cc.o"
  "CMakeFiles/pmnet_common.dir/crc32.cc.o.d"
  "CMakeFiles/pmnet_common.dir/logging.cc.o"
  "CMakeFiles/pmnet_common.dir/logging.cc.o.d"
  "CMakeFiles/pmnet_common.dir/rng.cc.o"
  "CMakeFiles/pmnet_common.dir/rng.cc.o.d"
  "CMakeFiles/pmnet_common.dir/stats.cc.o"
  "CMakeFiles/pmnet_common.dir/stats.cc.o.d"
  "libpmnet_common.a"
  "libpmnet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmnet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
