# Empty compiler generated dependencies file for pmnet_common.
# This may be replaced when dependencies are built.
