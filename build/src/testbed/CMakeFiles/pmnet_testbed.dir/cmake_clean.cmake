file(REMOVE_RECURSE
  "CMakeFiles/pmnet_testbed.dir/driver.cc.o"
  "CMakeFiles/pmnet_testbed.dir/driver.cc.o.d"
  "CMakeFiles/pmnet_testbed.dir/system.cc.o"
  "CMakeFiles/pmnet_testbed.dir/system.cc.o.d"
  "libpmnet_testbed.a"
  "libpmnet_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmnet_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
