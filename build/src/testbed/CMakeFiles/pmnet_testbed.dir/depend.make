# Empty dependencies file for pmnet_testbed.
# This may be replaced when dependencies are built.
