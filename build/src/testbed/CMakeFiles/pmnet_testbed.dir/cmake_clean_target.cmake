file(REMOVE_RECURSE
  "libpmnet_testbed.a"
)
