file(REMOVE_RECURSE
  "libpmnet_net.a"
)
