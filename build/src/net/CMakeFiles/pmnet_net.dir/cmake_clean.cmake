file(REMOVE_RECURSE
  "CMakeFiles/pmnet_net.dir/link.cc.o"
  "CMakeFiles/pmnet_net.dir/link.cc.o.d"
  "CMakeFiles/pmnet_net.dir/packet.cc.o"
  "CMakeFiles/pmnet_net.dir/packet.cc.o.d"
  "CMakeFiles/pmnet_net.dir/switch.cc.o"
  "CMakeFiles/pmnet_net.dir/switch.cc.o.d"
  "CMakeFiles/pmnet_net.dir/topology.cc.o"
  "CMakeFiles/pmnet_net.dir/topology.cc.o.d"
  "libpmnet_net.a"
  "libpmnet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmnet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
