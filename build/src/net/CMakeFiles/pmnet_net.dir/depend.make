# Empty dependencies file for pmnet_net.
# This may be replaced when dependencies are built.
