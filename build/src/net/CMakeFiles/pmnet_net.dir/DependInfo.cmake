
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/link.cc" "src/net/CMakeFiles/pmnet_net.dir/link.cc.o" "gcc" "src/net/CMakeFiles/pmnet_net.dir/link.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/net/CMakeFiles/pmnet_net.dir/packet.cc.o" "gcc" "src/net/CMakeFiles/pmnet_net.dir/packet.cc.o.d"
  "/root/repo/src/net/switch.cc" "src/net/CMakeFiles/pmnet_net.dir/switch.cc.o" "gcc" "src/net/CMakeFiles/pmnet_net.dir/switch.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/net/CMakeFiles/pmnet_net.dir/topology.cc.o" "gcc" "src/net/CMakeFiles/pmnet_net.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pmnet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pmnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
