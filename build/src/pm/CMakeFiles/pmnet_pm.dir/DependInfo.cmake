
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pm/log_queue.cc" "src/pm/CMakeFiles/pmnet_pm.dir/log_queue.cc.o" "gcc" "src/pm/CMakeFiles/pmnet_pm.dir/log_queue.cc.o.d"
  "/root/repo/src/pm/log_store.cc" "src/pm/CMakeFiles/pmnet_pm.dir/log_store.cc.o" "gcc" "src/pm/CMakeFiles/pmnet_pm.dir/log_store.cc.o.d"
  "/root/repo/src/pm/pm_heap.cc" "src/pm/CMakeFiles/pmnet_pm.dir/pm_heap.cc.o" "gcc" "src/pm/CMakeFiles/pmnet_pm.dir/pm_heap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pmnet_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pmnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pmnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
