file(REMOVE_RECURSE
  "libpmnet_pm.a"
)
