# Empty compiler generated dependencies file for pmnet_pm.
# This may be replaced when dependencies are built.
