file(REMOVE_RECURSE
  "CMakeFiles/pmnet_pm.dir/log_queue.cc.o"
  "CMakeFiles/pmnet_pm.dir/log_queue.cc.o.d"
  "CMakeFiles/pmnet_pm.dir/log_store.cc.o"
  "CMakeFiles/pmnet_pm.dir/log_store.cc.o.d"
  "CMakeFiles/pmnet_pm.dir/pm_heap.cc.o"
  "CMakeFiles/pmnet_pm.dir/pm_heap.cc.o.d"
  "libpmnet_pm.a"
  "libpmnet_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmnet_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
