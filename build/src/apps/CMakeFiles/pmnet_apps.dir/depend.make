# Empty dependencies file for pmnet_apps.
# This may be replaced when dependencies are built.
