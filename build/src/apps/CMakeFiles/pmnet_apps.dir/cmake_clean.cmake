file(REMOVE_RECURSE
  "CMakeFiles/pmnet_apps.dir/command_store.cc.o"
  "CMakeFiles/pmnet_apps.dir/command_store.cc.o.d"
  "CMakeFiles/pmnet_apps.dir/kv_protocol.cc.o"
  "CMakeFiles/pmnet_apps.dir/kv_protocol.cc.o.d"
  "CMakeFiles/pmnet_apps.dir/workloads.cc.o"
  "CMakeFiles/pmnet_apps.dir/workloads.cc.o.d"
  "libpmnet_apps.a"
  "libpmnet_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmnet_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
