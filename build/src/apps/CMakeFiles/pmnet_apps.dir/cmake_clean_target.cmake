file(REMOVE_RECURSE
  "libpmnet_apps.a"
)
