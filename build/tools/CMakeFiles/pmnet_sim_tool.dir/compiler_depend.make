# Empty compiler generated dependencies file for pmnet_sim_tool.
# This may be replaced when dependencies are built.
