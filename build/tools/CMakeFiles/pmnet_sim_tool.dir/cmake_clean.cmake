file(REMOVE_RECURSE
  "CMakeFiles/pmnet_sim_tool.dir/pmnet_sim.cc.o"
  "CMakeFiles/pmnet_sim_tool.dir/pmnet_sim.cc.o.d"
  "pmnet_sim"
  "pmnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmnet_sim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
