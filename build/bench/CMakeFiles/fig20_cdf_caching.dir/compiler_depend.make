# Empty compiler generated dependencies file for fig20_cdf_caching.
# This may be replaced when dependencies are built.
