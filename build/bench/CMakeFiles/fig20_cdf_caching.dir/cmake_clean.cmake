file(REMOVE_RECURSE
  "CMakeFiles/fig20_cdf_caching.dir/fig20_cdf_caching.cc.o"
  "CMakeFiles/fig20_cdf_caching.dir/fig20_cdf_caching.cc.o.d"
  "fig20_cdf_caching"
  "fig20_cdf_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_cdf_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
