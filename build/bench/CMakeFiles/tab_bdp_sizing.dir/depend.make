# Empty dependencies file for tab_bdp_sizing.
# This may be replaced when dependencies are built.
