file(REMOVE_RECURSE
  "CMakeFiles/tab_bdp_sizing.dir/tab_bdp_sizing.cc.o"
  "CMakeFiles/tab_bdp_sizing.dir/tab_bdp_sizing.cc.o.d"
  "tab_bdp_sizing"
  "tab_bdp_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_bdp_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
