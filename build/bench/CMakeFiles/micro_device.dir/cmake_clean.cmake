file(REMOVE_RECURSE
  "CMakeFiles/micro_device.dir/micro_device.cc.o"
  "CMakeFiles/micro_device.dir/micro_device.cc.o.d"
  "micro_device"
  "micro_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
