# Empty dependencies file for micro_device.
# This may be replaced when dependencies are built.
