# Empty compiler generated dependencies file for fig16_stress.
# This may be replaced when dependencies are built.
