file(REMOVE_RECURSE
  "CMakeFiles/fig16_stress.dir/fig16_stress.cc.o"
  "CMakeFiles/fig16_stress.dir/fig16_stress.cc.o.d"
  "fig16_stress"
  "fig16_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
