# Empty compiler generated dependencies file for abl_queue_sizing.
# This may be replaced when dependencies are built.
