file(REMOVE_RECURSE
  "CMakeFiles/abl_queue_sizing.dir/abl_queue_sizing.cc.o"
  "CMakeFiles/abl_queue_sizing.dir/abl_queue_sizing.cc.o.d"
  "abl_queue_sizing"
  "abl_queue_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_queue_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
