# Empty compiler generated dependencies file for fig21_replication.
# This may be replaced when dependencies are built.
