file(REMOVE_RECURSE
  "CMakeFiles/fig21_replication.dir/fig21_replication.cc.o"
  "CMakeFiles/fig21_replication.dir/fig21_replication.cc.o.d"
  "fig21_replication"
  "fig21_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
