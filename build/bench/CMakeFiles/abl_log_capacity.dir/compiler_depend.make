# Empty compiler generated dependencies file for abl_log_capacity.
# This may be replaced when dependencies are built.
