file(REMOVE_RECURSE
  "CMakeFiles/abl_log_capacity.dir/abl_log_capacity.cc.o"
  "CMakeFiles/abl_log_capacity.dir/abl_log_capacity.cc.o.d"
  "abl_log_capacity"
  "abl_log_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_log_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
