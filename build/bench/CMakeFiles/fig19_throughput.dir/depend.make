# Empty dependencies file for fig19_throughput.
# This may be replaced when dependencies are built.
