file(REMOVE_RECURSE
  "CMakeFiles/abl_cache.dir/abl_cache.cc.o"
  "CMakeFiles/abl_cache.dir/abl_cache.cc.o.d"
  "abl_cache"
  "abl_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
