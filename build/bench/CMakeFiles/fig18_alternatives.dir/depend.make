# Empty dependencies file for fig18_alternatives.
# This may be replaced when dependencies are built.
