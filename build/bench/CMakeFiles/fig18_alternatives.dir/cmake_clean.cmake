file(REMOVE_RECURSE
  "CMakeFiles/fig18_alternatives.dir/fig18_alternatives.cc.o"
  "CMakeFiles/fig18_alternatives.dir/fig18_alternatives.cc.o.d"
  "fig18_alternatives"
  "fig18_alternatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
