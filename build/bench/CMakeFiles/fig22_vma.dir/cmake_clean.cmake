file(REMOVE_RECURSE
  "CMakeFiles/fig22_vma.dir/fig22_vma.cc.o"
  "CMakeFiles/fig22_vma.dir/fig22_vma.cc.o.d"
  "fig22_vma"
  "fig22_vma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_vma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
