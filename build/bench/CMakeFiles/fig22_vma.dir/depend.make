# Empty dependencies file for fig22_vma.
# This may be replaced when dependencies are built.
