file(REMOVE_RECURSE
  "CMakeFiles/test_read_cache.dir/test_read_cache.cc.o"
  "CMakeFiles/test_read_cache.dir/test_read_cache.cc.o.d"
  "test_read_cache"
  "test_read_cache.pdb"
  "test_read_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_read_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
