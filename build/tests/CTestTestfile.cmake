# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_pm[1]_include.cmake")
include("/root/repo/build/tests/test_kv[1]_include.cmake")
include("/root/repo/build/tests/test_read_cache[1]_include.cmake")
include("/root/repo/build/tests/test_stack[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_testbed[1]_include.cmake")
include("/root/repo/build/tests/test_scenarios[1]_include.cmake")
include("/root/repo/build/tests/test_wire_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_edges[1]_include.cmake")
