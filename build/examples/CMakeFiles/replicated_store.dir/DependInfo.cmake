
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/replicated_store.cpp" "examples/CMakeFiles/replicated_store.dir/replicated_store.cpp.o" "gcc" "examples/CMakeFiles/replicated_store.dir/replicated_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/pmnet_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/pmnet_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/pmnet_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/pmnet_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/pmnet/CMakeFiles/pmnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/pmnet_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pmnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pmnet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmnet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
