# Empty compiler generated dependencies file for cache_accelerated.
# This may be replaced when dependencies are built.
