file(REMOVE_RECURSE
  "CMakeFiles/cache_accelerated.dir/cache_accelerated.cpp.o"
  "CMakeFiles/cache_accelerated.dir/cache_accelerated.cpp.o.d"
  "cache_accelerated"
  "cache_accelerated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_accelerated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
